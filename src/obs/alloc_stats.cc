#include "chameleon/obs/alloc_stats.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include "chameleon/obs/obs.h"  // for CHAMELEON_OBS_ENABLED
#include "heap_hooks.h"

/// Replacement global allocation functions. [replacement.functions] allows
/// a program to define these; every image linking libchameleon gets them
/// (the archive member is pulled in because operator new is referenced
/// everywhere). They forward to malloc/free — ASan still interposes at the
/// malloc layer, so leak and overflow detection keep working — and add a
/// few thread-local counter stores plus the heap sampler's one-load
/// dormant check (heap_hooks.h). All overloads route through the three
/// Counted* helpers below: the C++17 aligned (std::align_val_t) and sized
/// variants included, so over-aligned allocations hit the same counters
/// and sampler as plain ones.
///
/// The counters live in malloc'd per-thread nodes on a leaked intrusive
/// list, so TotalAllocStats() can sum the whole process (run_summary's
/// heap headline) while the per-thread reads stay one pointer hop. The
/// fields are atomics written with relaxed load+store by their owner
/// thread only — that compiles to the same plain add as the old
/// thread_local integers while making the cross-thread sum race-free.
/// Nodes are registered through a trivially-initialized thread_local
/// pointer, so touching them from inside operator new cannot recurse
/// through dynamic TLS construction; they outlive their thread (the list
/// never shrinks) so exited threads keep counting toward the totals.

namespace chameleon::obs {
namespace {

struct ThreadCounterNode {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> alloc_bytes{0};
  std::atomic<std::uint64_t> frees{0};
  ThreadCounterNode* next = nullptr;
};

std::atomic<ThreadCounterNode*> g_counter_list{nullptr};

thread_local ThreadCounterNode* tls_counters = nullptr;

#if CHAMELEON_OBS_ENABLED

/// First allocation on this thread: register a node. Uses malloc +
/// placement new directly so registration never re-enters operator new.
ThreadCounterNode* RegisterThreadCountersSlow() {
  void* raw = std::malloc(sizeof(ThreadCounterNode));
  if (raw == nullptr) return nullptr;
  auto* node = new (raw) ThreadCounterNode();
  node->next = g_counter_list.load(std::memory_order_relaxed);
  while (!g_counter_list.compare_exchange_weak(node->next, node,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
  }
  tls_counters = node;
  return node;
}

inline ThreadCounterNode* Counters() {
  ThreadCounterNode* node = tls_counters;
  return node != nullptr ? node : RegisterThreadCountersSlow();
}

/// Owner-thread increment: relaxed load+store (not fetch_add) — the node
/// is only written by its owning thread, so this compiles to a plain
/// add while staying race-free against TotalAllocStats readers.
inline void Bump(std::atomic<std::uint64_t>& counter, std::uint64_t delta) {
  counter.store(counter.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
}

#endif  // CHAMELEON_OBS_ENABLED

}  // namespace

AllocStats ThreadAllocStats() {
  const ThreadCounterNode* node = tls_counters;
  if (node == nullptr) return AllocStats{};
  return AllocStats{node->allocs.load(std::memory_order_relaxed),
                    node->alloc_bytes.load(std::memory_order_relaxed),
                    node->frees.load(std::memory_order_relaxed)};
}

AllocStats TotalAllocStats() {
  AllocStats total;
  for (const ThreadCounterNode* node =
           g_counter_list.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    total.allocs += node->allocs.load(std::memory_order_relaxed);
    total.alloc_bytes += node->alloc_bytes.load(std::memory_order_relaxed);
    total.frees += node->frees.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace chameleon::obs

#if CHAMELEON_OBS_ENABLED

namespace {

void* CountedAlloc(std::size_t size) noexcept {
  chameleon::obs::ThreadCounterNode* counters = chameleon::obs::Counters();
  if (counters != nullptr) {
    chameleon::obs::Bump(counters->allocs, 1);
    chameleon::obs::Bump(counters->alloc_bytes, size);
  }
  // malloc(0) may return null; operator new must return a unique pointer.
  void* ptr = std::malloc(size != 0 ? size : 1);
  chameleon::obs::internal::HeapHookAlloc(ptr, size);
  return ptr;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) noexcept {
  chameleon::obs::ThreadCounterNode* counters = chameleon::obs::Counters();
  if (counters != nullptr) {
    chameleon::obs::Bump(counters->allocs, 1);
    chameleon::obs::Bump(counters->alloc_bytes, size);
  }
  void* ptr = nullptr;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (posix_memalign(&ptr, alignment, size != 0 ? size : 1) != 0) {
    return nullptr;
  }
  chameleon::obs::internal::HeapHookAlloc(ptr, size);
  return ptr;
}

void CountedFree(void* ptr) noexcept {
  if (ptr == nullptr) return;
  chameleon::obs::ThreadCounterNode* counters = chameleon::obs::Counters();
  if (counters != nullptr) chameleon::obs::Bump(counters->frees, 1);
  chameleon::obs::internal::HeapHookFree(ptr);
  std::free(ptr);
}

[[noreturn]] void ThrowBadAlloc() { throw std::bad_alloc(); }

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = CountedAlloc(size);
  if (ptr == nullptr) ThrowBadAlloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = CountedAlloc(size);
  if (ptr == nullptr) ThrowBadAlloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) ThrowBadAlloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* ptr = CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) ThrowBadAlloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  CountedFree(ptr);
}

#endif  // CHAMELEON_OBS_ENABLED
