// Dormant-overhead budget check for the parallel-region telemetry: a
// loop of small ParallelForBlocks regions, run with observability
// disabled, must cost no more than --budget over the same regions
// executed by a bare local replica of the pre-instrumentation fork-join
// path (default 2%). With obs dormant the only additions on the real
// path are the requested-worker computation and one relaxed
// obs::Enabled() load per region, so this bench bounds the per-region
// tax at the worst realistic density — many tiny regions back to back.
//
//   micro_parallel_overhead [--budget=0.02] [--reps=9]
//       [--out=BENCH_...json]
//
// Exit code 0 inside the budget (or inside the repetition noise floor),
// 1 on a violation — CI gates on it. Same self-contained median/MAD
// harness as micro_flight_overhead.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "chameleon/obs/parallel_stats.h"
#include "chameleon/util/flags.h"
#include "chameleon/util/parallel.h"
#include "chameleon/util/timer.h"
#include "harness.h"
#include "chameleon/util/status.h"

namespace chameleon {
namespace {

/// Region shape: small enough that the grain clamp keeps the region
/// inline on the caller (so the bench times the dispatch tax, not
/// thread spawns), large enough that fn() does real work per block.
constexpr std::size_t kItems = 2048;
constexpr std::size_t kBlock = 256;

/// Bare replica of the pre-instrumentation ParallelForBlocks, kept
/// byte-for-byte comparable: same worker-count clamps, same atomic
/// cursor, same std::function indirection, same block boundaries. What
/// it lacks is exactly what the telemetry added — the obs::Enabled()
/// branch (and, when live, the instrumented drain).
void BareParallelForBlocks(
    std::size_t n, std::size_t block_size, int threads,
    const std::function<void(std::size_t block, std::size_t begin,
                             std::size_t end)>& fn) {
  if (n == 0 || block_size == 0) return;
  const std::size_t blocks = NumBlocks(n, block_size);
  std::size_t workers =
      std::min(static_cast<std::size_t>(EffectiveThreads(threads)), blocks);
  // Cached like the production path, so the measured delta is the
  // telemetry branch and not the hardware_concurrency lookup.
  static const std::size_t hw = [] {
    const unsigned n_cpus = std::thread::hardware_concurrency();
    return n_cpus == 0 ? std::size_t{1} : static_cast<std::size_t>(n_cpus);
  }();
  workers = std::min(workers, hw);
  workers = std::min(workers, std::max<std::size_t>(1, n / 1024));
  std::atomic<std::size_t> cursor{0};
  const auto drain = [&] {
    for (std::size_t block = cursor.fetch_add(1, std::memory_order_relaxed);
         block < blocks;
         block = cursor.fetch_add(1, std::memory_order_relaxed)) {
      const std::size_t begin = block * block_size;
      const std::size_t end = std::min(n, begin + block_size);
      fn(block, begin, end);
    }
  };
  if (workers <= 1) {
    drain();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();
  for (std::thread& t : pool) t.join();
}

/// Times `iterations` back-to-back regions. `real` dispatches through
/// the production ParallelForBlocks (obs dormant); otherwise the bare
/// replica runs the identical blocks.
template <bool real>
double TimeLoop(std::size_t iterations) {
  std::uint64_t acc = 0;
  const std::function<void(std::size_t, std::size_t, std::size_t)> fn =
      [&acc](std::size_t block, std::size_t begin, std::size_t end) {
        std::uint64_t sum = block;
        for (std::size_t i = begin; i < end; ++i) {
          sum += i * 2654435761u;
        }
        acc += sum;
      };
  const std::uint64_t start = MonotonicNanos();
  for (std::size_t i = 0; i < iterations; ++i) {
    if constexpr (real) {
      ParallelForBlocks(kItems, kBlock, 1, fn);
    } else {
      BareParallelForBlocks(kItems, kBlock, 1, fn);
    }
  }
  const std::uint64_t stop = MonotonicNanos();
  bench::DoNotOptimize(acc);
  return static_cast<double>(stop - start);
}

int Run(int argc, char** argv) {
  FlagSet flags(
      "micro_parallel_overhead: dormant ParallelForBlocks telemetry vs "
      "bare fork-join replica wall-clock budget check");
  flags.AddDouble("budget", 0.02,
                  "max tolerated relative overhead (0.02 = 2%)");
  flags.AddInt64("reps", 9, "timed repetitions per configuration");
  flags.AddInt64("iterations", 0,
                 "regions per repetition (0 = auto-calibrate to ~150 ms)");
  flags.AddString("out", "",
                  "also write the two timings as a BENCH_*.json suite");
  flags.AddBool("help", false, "show usage");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "error: %s\n%s", s.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::fprintf(stdout, "%s", flags.Usage().c_str());
    return 0;
  }

  // Observability stays uninitialized: Enabled() is false, which is
  // exactly the dormant state under test. Guard against accidental
  // recording all the same.
  const std::uint64_t recorded_before = obs::ParallelRegionsRecorded();

  std::size_t iterations =
      static_cast<std::size_t>(flags.GetInt64("iterations"));
  if (iterations == 0) {
    iterations = 1 << 10;
    for (;;) {
      const double ns = TimeLoop<false>(iterations);
      if (ns >= 75e6 || iterations >= (1u << 24)) {
        iterations = static_cast<std::size_t>(
            static_cast<double>(iterations) * std::max(1.0, 150e6 / ns));
        break;
      }
      iterations *= 2;
    }
  }
  std::fprintf(stderr,
               "workload: %zu regions/rep, %zu items in %zu-item blocks\n",
               iterations, kItems, kBlock);

  const int reps = static_cast<int>(flags.GetInt64("reps"));
  std::vector<double> bare_ns;
  std::vector<double> dormant_ns;
  // Alternate configurations so slow drift biases both equally.
  for (int rep = 0; rep < reps; ++rep) {
    bare_ns.push_back(TimeLoop<false>(iterations));
    dormant_ns.push_back(TimeLoop<true>(iterations));
  }

  if (obs::ParallelRegionsRecorded() != recorded_before) {
    std::fprintf(stderr,
                 "FAIL: dormant regions recorded telemetry (observability "
                 "unexpectedly enabled?)\n");
    return 1;
  }

  const double bare_median = bench::Median(bare_ns);
  const double dormant_median = bench::Median(dormant_ns);
  const double bare_mad = bench::MedianAbsDeviation(bare_ns, bare_median);
  const double dormant_mad =
      bench::MedianAbsDeviation(dormant_ns, dormant_median);
  const double delta = dormant_median - bare_median;
  const double overhead = bare_median > 0.0 ? delta / bare_median : 0.0;
  const double budget = flags.GetDouble("budget");
  const double noise_ns = 3.0 * std::max(bare_mad, dormant_mad);

  std::fprintf(stdout,
               "bare fork-join: median %.3f ms (MAD %.3f ms)\n"
               "dormant ParallelForBlocks: median %.3f ms (MAD %.3f ms)\n"
               "overhead: %+.2f%% (budget %.2f%%, noise floor %.3f ms)\n",
               bare_median * 1e-6, bare_mad * 1e-6, dormant_median * 1e-6,
               dormant_mad * 1e-6, overhead * 100.0, budget * 100.0,
               noise_ns * 1e-6);

  if (!flags.GetString("out").empty()) {
    const auto make_result = [&](const char* name, double median, double mad,
                                 const std::vector<double>& samples) {
      bench::BenchResult result;
      result.name = name;
      result.iterations = iterations;
      result.reps = reps;
      result.median_ns = median;
      result.mad_ns = mad;
      result.min_ns = *std::min_element(samples.begin(), samples.end());
      result.max_ns = *std::max_element(samples.begin(), samples.end());
      double sum = 0.0;
      for (const double v : samples) sum += v;
      result.mean_ns = sum / static_cast<double>(samples.size());
      return result;
    };
    const std::vector<bench::BenchResult> results = {
        make_result("BM_RegionLoop_Bare", bare_median, bare_mad, bare_ns),
        make_result("BM_RegionLoop_DormantParallelForBlocks", dormant_median,
                    dormant_mad, dormant_ns),
    };
    bench::BenchOptions bench_options;
    bench_options.reps = reps;
    if (Status s = bench::WriteBenchFile(flags.GetString("out"),
                                         "parallel_overhead", results,
                                         bench_options);
        !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 2;
    }
  }

  // Jitter inside the noise floor is not overhead — the same dual gate
  // the other micro_*_overhead benches apply.
  if (overhead > budget && delta > noise_ns) {
    std::fprintf(stderr,
                 "FAIL: dormant parallel-region overhead %.2f%% exceeds "
                 "the %.2f%% budget (+%.3f ms, noise floor %.3f ms)\n",
                 overhead * 100.0, budget * 100.0, delta * 1e-6,
                 noise_ns * 1e-6);
    return 1;
  }
  std::fprintf(stdout, "PASS\n");
  return 0;
}

}  // namespace
}  // namespace chameleon

int main(int argc, char** argv) { return chameleon::Run(argc, argv); }
