#ifndef CHAMELEON_UTIL_RNG_H_
#define CHAMELEON_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <limits>

/// \file rng.h
/// Deterministic, seedable random number generation. The engine is
/// xoshiro256** (Blackman & Vigna) seeded through splitmix64, which gives
/// full-period 64-bit streams from any seed including 0. All stochastic
/// code in the library draws from an explicitly passed `Rng&` so every
/// experiment is reproducible from a single master seed.

namespace chameleon {

/// splitmix64 step: mixes `state` and advances it. Used for seeding and
/// for cheap stateless hashing.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator, so it can be
/// plugged into <random> distributions, but the members below avoid the
/// libstdc++ distribution objects on hot paths.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2018u) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Uniform integer in [0, bound); bound must be positive. Uses Lemire's
  /// multiply-shift rejection method.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal deviate (Box-Muller with one cached value).
  double Gaussian();

  /// Truncated normal deviate: X ~ N(mean, sigma²) conditioned on
  /// lo <= X <= hi. Exact rejection sampling — plain normal rejection
  /// when the window covers the mode, a uniform proposal bounded by the
  /// window's peak density for narrow windows, and Robert's (1995)
  /// shifted-exponential proposal for one-sided tail windows, so the
  /// expected draw count stays O(1) in every regime. Degenerate inputs
  /// (sigma <= 0 or lo == hi) return mean clamped to [lo, hi]. Requires
  /// lo <= hi.
  double TruncatedGaussian(double mean, double sigma, double lo, double hi);

  /// Derives an independent child stream (for per-thread / per-phase
  /// generators that must not share state with the parent).
  Rng Split() {
    const std::uint64_t child_seed = (*this)();
    return Rng(child_seed);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace chameleon

#endif  // CHAMELEON_UTIL_RNG_H_
