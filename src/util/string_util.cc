#include "chameleon/util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace chameleon {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    // +1: vsnprintf writes the terminating NUL; std::string guarantees
    // data()[size()] is addressable.
    std::vsnprintf(out.data(), static_cast<std::size_t>(needed) + 1, format,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> SplitTokens(std::string_view text,
                                     std::string_view delims) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? text.size() : end;
    if (stop > start) tokens.emplace_back(text.substr(start, stop - start));
    start = stop + 1;
  }
  return tokens;
}

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool HasPrefix(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool HasSuffix(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<std::int64_t> ParseInt(std::string_view text) {
  const std::string token(StripWhitespace(text));
  if (token.empty()) return Status::InvalidArgument("empty integer token");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + token);
  }
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("not an integer: " + token);
  }
  return static_cast<std::int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string token(StripWhitespace(text));
  if (token.empty()) return Status::InvalidArgument("empty number token");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: " + token);
  }
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("not a number: " + token);
  }
  return value;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(c) & 0xffu);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace chameleon
