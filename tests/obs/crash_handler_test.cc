// Crash forensics end to end: a forked child installs the handler,
// opens a span, records flight events, and dies on a fatal signal; the
// parent asserts the child's wait status is the original signal AND the
// metrics stream ends with the full forensics trail — a `crash` record
// with a backtrace, the `flight_event_dump` ring tails, and a signalled
// `run_summary`. The children die via raise()/abort() rather than a
// real wild pointer so the same test stays meaningful under sanitizers
// (which intercept genuine faults before any user handler).

#include "chameleon/obs/crash_handler.h"

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "chameleon/obs/flight_recorder.h"
#include "chameleon/obs/obs.h"
#include "chameleon/obs/sink.h"

namespace chameleon::obs {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

std::string FindRecord(const std::vector<std::string>& lines,
                       std::string_view type) {
  for (const std::string& line : lines) {
    if (JsonlStringField(line, "type") == type) return line;
  }
  return "";
}

/// Forks; the child wires obs + crash handler against `path`, opens a
/// span, drops a flight event, then runs `die` (which must not return).
/// Exit code 95 = crash forensics unavailable on this build (parent
/// turns that into a skip), 97 = obs init failed, 98 = `die` returned.
template <typename Fn>
int RunCrashChild(const std::string& path, Fn die) {
  std::fflush(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    ObsOptions options;
    options.metrics_out = path;
    options.read_env = false;
    if (!InitObservability(options).ok()) _exit(97);
    if (!InstallCrashHandler().ok()) _exit(95);
    RecordFlightEvent(FlightEventKind::kGeneric, "before_crash", 1, 0);
    CHOBS_SPAN(span, "crash_phase");
    die();
    _exit(98);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

bool SkippedUnsupported(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 95;
}

TEST(CrashHandlerTest, SigsegvLeavesFullForensicsTrail) {
  const std::string path = testing::TempDir() + "/crash_sigsegv.jsonl";
  std::remove(path.c_str());

  const int status = RunCrashChild(path, [] { raise(SIGSEGV); });
  if (SkippedUnsupported(status)) {
    GTEST_SKIP() << "crash forensics unavailable in this build";
  }

  // The handler re-raises with the default disposition restored, so the
  // child's wait status reports the original signal.
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::vector<std::string> lines = ReadLines(path);
  const std::string crash = FindRecord(lines, "crash");
  ASSERT_FALSE(crash.empty()) << "no crash record flushed";
  EXPECT_EQ(JsonlNumberField(crash, "signal"), SIGSEGV);
  EXPECT_EQ(JsonlStringField(crash, "signal_name"), "SIGSEGV");
  EXPECT_NE(crash.find("\"frames\":[\""), std::string::npos)
      << "empty backtrace: " << crash;
#if CHAMELEON_OBS_ENABLED
  EXPECT_EQ(JsonlStringField(crash, "span_path"), "crash_phase");
#endif

  const std::string dump = FindRecord(lines, "flight_event_dump");
  ASSERT_FALSE(dump.empty()) << "no flight ring dump flushed";
  EXPECT_EQ(JsonlNumberField(dump, "signal"), SIGSEGV);
  EXPECT_NE(dump.find("before_crash"), std::string::npos);

  const std::string summary = FindRecord(lines, "run_summary");
  ASSERT_FALSE(summary.empty()) << "no run_summary flushed";
  EXPECT_EQ(JsonlNumberField(summary, "signal"), SIGSEGV);
}

TEST(CrashHandlerTest, AbortIsCaughtAndReRaised) {
  const std::string path = testing::TempDir() + "/crash_abort.jsonl";
  std::remove(path.c_str());

  const int status = RunCrashChild(path, [] { std::abort(); });
  if (SkippedUnsupported(status)) {
    GTEST_SKIP() << "crash forensics unavailable in this build";
  }

  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::vector<std::string> lines = ReadLines(path);
  const std::string crash = FindRecord(lines, "crash");
  ASSERT_FALSE(crash.empty());
  EXPECT_EQ(JsonlStringField(crash, "signal_name"), "SIGABRT");
  // SIGABRT carries no faulting address.
  EXPECT_FALSE(JsonlStringField(crash, "fault_addr").has_value());
  EXPECT_FALSE(FindRecord(lines, "run_summary").empty());
}

TEST(CrashHandlerTest, SignalNamesAreStable) {
  EXPECT_STREQ(CrashSignalName(SIGSEGV), "SIGSEGV");
  EXPECT_STREQ(CrashSignalName(SIGABRT), "SIGABRT");
  EXPECT_STREQ(CrashSignalName(SIGFPE), "SIGFPE");
  EXPECT_STREQ(CrashSignalName(SIGINT), "signal");
}

// Runs last: installs the handler in the test runner itself (the fork
// cases above must not inherit it, or their children would already have
// a handler before RunCrashChild installs one).
TEST(CrashHandlerTest, InstallIsIdempotentInProcess) {
  const Status first = InstallCrashHandler();
  if (!first.ok()) {
    GTEST_SKIP() << "crash forensics unavailable: " << first.ToString();
  }
  EXPECT_TRUE(CrashHandlerInstalled());
  CrashHandlerOptions options;
  options.deadline_seconds = 10;
  EXPECT_TRUE(InstallCrashHandler(options).ok());
  EXPECT_TRUE(CrashHandlerInstalled());
}

}  // namespace
}  // namespace chameleon::obs
