#include "chameleon/reliability/reliability.h"

#include <cmath>

#include "chameleon/graph/union_find.h"
#include "chameleon/obs/obs.h"
#include "chameleon/reliability/world_sampler.h"
#include "chameleon/util/stats.h"
#include "chameleon/util/string_util.h"

namespace chameleon::rel {
namespace {

Status ValidateTerminals(const graph::UncertainGraph& graph, NodeId source,
                         NodeId target) {
  if (source >= graph.num_nodes() || target >= graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("terminal pair (%u, %u) out of range for %u nodes", source,
                  target, graph.num_nodes()));
  }
  return Status::OK();
}

Status ValidateOptions(const MonteCarloOptions& options) {
  if (options.worlds == 0) {
    return Status::InvalidArgument("worlds must be positive");
  }
  return Status::OK();
}

/// Applies a sampled world mask to the union-find structure.
void UniteWorld(const graph::UncertainGraph& graph, const BitVector& mask,
                graph::UnionFind& dsu) {
  dsu.Reset();
  const auto& edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (mask.Get(e)) dsu.Union(edges[e].u, edges[e].v);
  }
}

}  // namespace

Result<double> TwoTerminalReliability(const graph::UncertainGraph& graph,
                                      NodeId source, NodeId target,
                                      const MonteCarloOptions& options,
                                      Rng& rng) {
  CHAMELEON_RETURN_IF_ERROR(ValidateTerminals(graph, source, target));
  CHAMELEON_RETURN_IF_ERROR(ValidateOptions(options));

  CHOBS_SPAN(span, "reliability/two_terminal");
  const WorldSampler sampler(graph);
  graph::UnionFind dsu(graph.num_nodes());
  BitVector mask(graph.num_edges());
  obs::ProgressHeartbeat progress(
      "reliability/two_terminal/sample_worlds",
      options.heartbeat ? options.worlds : 0,
      obs::ProgressHeartbeat::Options{
          .min_interval_nanos = obs::HeartbeatIntervalNanos(),
          .log = options.heartbeat,
          .sink = nullptr,
          .use_global_sink = options.heartbeat});

  std::size_t hits = 0;
  {
    CHOBS_SPAN(loop_span, "sample_worlds");
    for (std::size_t w = 0; w < options.worlds; ++w) {
      sampler.SampleMask(rng, mask);
      UniteWorld(graph, mask, dsu);
      if (dsu.Connected(source, target)) ++hits;
      progress.Tick(w + 1, hits, w + 1);
    }
    loop_span.AddCount("worlds", options.worlds);
    loop_span.AddCount("hits", hits);
  }
  progress.Finish();

  span.AddCount("worlds", options.worlds);
  CHOBS_COUNT("reliability/two_terminal/estimates", 1);
  return static_cast<double>(hits) / static_cast<double>(options.worlds);
}

Result<std::vector<double>> PairSetReliability(
    const graph::UncertainGraph& graph,
    const std::vector<std::pair<NodeId, NodeId>>& pairs,
    const MonteCarloOptions& options, Rng& rng) {
  CHAMELEON_RETURN_IF_ERROR(ValidateOptions(options));
  for (const auto& [s, t] : pairs) {
    CHAMELEON_RETURN_IF_ERROR(ValidateTerminals(graph, s, t));
  }

  CHOBS_SPAN(span, "reliability/pair_set");
  span.AddCount("pairs", pairs.size());
  const WorldSampler sampler(graph);
  graph::UnionFind dsu(graph.num_nodes());
  BitVector mask(graph.num_edges());
  std::vector<std::size_t> hits(pairs.size(), 0);
  obs::ProgressHeartbeat progress(
      "reliability/pair_set/sample_worlds",
      options.heartbeat ? options.worlds : 0,
      obs::ProgressHeartbeat::Options{
          .min_interval_nanos = obs::HeartbeatIntervalNanos(),
          .log = options.heartbeat,
          .sink = nullptr,
          .use_global_sink = options.heartbeat});

  {
    // Reused sampling: one world serves every pair (Lemma 3's cost
    // argument) — the loop is worlds-major, pairs-minor.
    CHOBS_SPAN(loop_span, "sample_worlds");
    for (std::size_t w = 0; w < options.worlds; ++w) {
      sampler.SampleMask(rng, mask);
      UniteWorld(graph, mask, dsu);
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (dsu.Connected(pairs[i].first, pairs[i].second)) ++hits[i];
      }
      progress.Tick(w + 1);
    }
    loop_span.AddCount("worlds", options.worlds);
  }
  progress.Finish();

  std::vector<double> reliability(pairs.size(), 0.0);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    reliability[i] =
        static_cast<double>(hits[i]) / static_cast<double>(options.worlds);
  }
  CHOBS_COUNT("reliability/pair_set/estimates", 1);
  return reliability;
}

Result<ConnectedPairsEstimate> ExpectedConnectedPairs(
    const graph::UncertainGraph& graph, const MonteCarloOptions& options,
    Rng& rng) {
  CHAMELEON_RETURN_IF_ERROR(ValidateOptions(options));

  CHOBS_SPAN(span, "reliability/connected_pairs");
  const WorldSampler sampler(graph);
  graph::UnionFind dsu(graph.num_nodes());
  BitVector mask(graph.num_edges());
  RunningStats stats;
  obs::ProgressHeartbeat progress(
      "reliability/connected_pairs/sample_worlds",
      options.heartbeat ? options.worlds : 0,
      obs::ProgressHeartbeat::Options{
          .min_interval_nanos = obs::HeartbeatIntervalNanos(),
          .log = options.heartbeat,
          .sink = nullptr,
          .use_global_sink = options.heartbeat});

  {
    CHOBS_SPAN(loop_span, "sample_worlds");
    for (std::size_t w = 0; w < options.worlds; ++w) {
      sampler.SampleMask(rng, mask);
      UniteWorld(graph, mask, dsu);
      stats.Add(static_cast<double>(dsu.ConnectedPairs()));
      progress.Tick(w + 1);
    }
    loop_span.AddCount("worlds", options.worlds);
  }
  progress.Finish();

  ConnectedPairsEstimate estimate;
  estimate.expected_pairs = stats.mean();
  estimate.stddev = stats.stddev();
  estimate.worlds = options.worlds;
  span.AddCount("worlds", options.worlds);
  CHOBS_COUNT("reliability/connected_pairs/estimates", 1);
  return estimate;
}

}  // namespace chameleon::rel
