#ifndef CHAMELEON_ANONYMIZE_RELEVANCE_H_
#define CHAMELEON_ANONYMIZE_RELEVANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chameleon/graph/uncertain_graph.h"
#include "chameleon/util/status.h"

/// \file relevance.h
/// Reliability relevance ERR^e (paper Definition 5, Algorithm 2): the
/// sensitivity of the expected number of connected vertex pairs to edge
/// e's probability,
///   ERR^e = ∂R(G)/∂p(e) = E_{W'}[pairs(W' + e) − pairs(W' − e)],
/// where W' ranges over possible worlds of the *other* edges. Edges with
/// high relevance carry the graph's connectivity structure; Chameleon's
/// GenObf steers perturbation noise away from them.
///
/// The reused-sampling estimator (Lemma 3) shares one pool of N sampled
/// worlds across every edge: per world it runs a single union-find pass,
/// then sweeps all edges once. For a world W and edge e = (u, v) with
/// u, v in *different* components, e is necessarily absent from W and the
/// delta pairs(W + e) − pairs(W) is exactly |C_u|·|C_v|; when u, v are
/// connected the delta is 0. Because edge coins are independent, the
/// worlds with e absent are a fair sample of W', so averaging the deltas
/// over those worlds (N_e of them) is unbiased. Total cost
/// O(N·α(|V|)·|E|) for all edges simultaneously — versus the naive
/// per-edge re-sampler's O(|E|·N·α(|V|)·|E|), which is kept here as the
/// cross-validation oracle for tests.
///
/// Caveat inherited from the estimator: an edge with p(e) = 1 is never
/// absent (N_e = 0), so its relevance is unobservable and reported as 0
/// with zero weight. The driver treats such edges as non-candidates.
///
/// Determinism: every world w draws from its own splitmix-derived stream
/// keyed by (seed, w), per-world contributions are exact integer counts
/// accumulated per fixed-size block and merged in block order, so the
/// result is bit-identical across worker counts.

namespace chameleon::anonymize {

struct RelevanceOptions {
  /// Number of sampled worlds N shared across all edges.
  std::size_t worlds = 200;
  /// Master seed; per-world streams are derived, never shared.
  std::uint64_t seed = 2018;
  /// Worker count for the per-round world sweep (< 1 = hardware).
  int threads = 0;
  /// First convergence checkpoint; later checkpoints double. Rounds are
  /// cut at checkpoints so early stopping stays deterministic.
  std::size_t min_worlds = 32;
  /// Early-stop rule on the per-world total relevance mass: stop when
  /// the 95% CI half-width falls to max_rel_err·|mean| (0 = off).
  double max_rel_err = 0.0;
  /// Emit progress heartbeats to the log.
  bool heartbeat = true;
};

/// Reliability relevance of every edge (plus diagnostics).
struct EdgeRelevance {
  /// ERR^e per edge, aligned with graph.edges().
  std::vector<double> err;
  /// Variance of each ERR^e estimate (sample variance / N_e); 0 when
  /// N_e < 2. Tests use this for self-scaling MC error bounds.
  std::vector<double> err_variance;
  /// N_e: worlds in which edge e was absent (the usable sample count).
  std::vector<std::uint32_t> absent_worlds;
  /// VRR^v: summed relevance of v's incident edges.
  std::vector<double> vertex_err;
  /// Worlds actually sampled (== options.worlds unless stopped early).
  std::size_t worlds = 0;
  bool stopped_early = false;
  double mean_err = 0.0;
  double max_err = 0.0;
  /// Mean per-world total relevance mass Σ_e delta_e(W) — the
  /// convergence statistic reported in relevance_progress records.
  double mean_world_mass = 0.0;
  double wall_ms = 0.0;
};

/// Reused-sampling estimator (Algorithm 2). Emits an
/// `anonymize/relevance` trace span and `relevance_progress` JSONL
/// records at geometric world-count checkpoints while observability is
/// live. InvalidArgument when options.worlds == 0.
Result<EdgeRelevance> EstimateRelevance(const graph::UncertainGraph& graph,
                                        const RelevanceOptions& options);

/// Naive per-edge re-sampler: for each edge, N fresh worlds of the other
/// edges. O(|E|²·N·α) — the test oracle for cross-validating the reused
/// estimator on small graphs; never used by the driver.
Result<EdgeRelevance> EstimateRelevanceNaive(
    const graph::UncertainGraph& graph, const RelevanceOptions& options);

}  // namespace chameleon::anonymize

#endif  // CHAMELEON_ANONYMIZE_RELEVANCE_H_
