// Figure 11 reproduction: preservation of the Clustering Coefficient,
// computed as the Monte Carlo expectation of the average local clustering
// coefficient over sampled possible worlds. Expected shape: Chameleon
// beats Rep-An, whose representative extraction plus heavy noise disrupts
// the local triangle structure.

#include "chameleon/metrics/clustering.h"
#include "chameleon/reliability/world_sampler.h"
#include "chameleon/util/stats.h"
#include "exp_common.h"

namespace {

double ClusteringMetric(const chameleon::graph::UncertainGraph& g,
                        const chameleon::bench::ExperimentConfig& config) {
  using namespace chameleon;
  rel::WorldSampler sampler(g);
  Rng rng(config.seed + 1111);
  const std::size_t worlds = std::max<std::size_t>(8, config.worlds / 40);
  RunningStats clustering;
  for (std::size_t w = 0; w < worlds; ++w) {
    const graph::Graph world = sampler.SampleGraph(rng);
    clustering.Add(metrics::AverageClusteringCoefficient(world));
  }
  return clustering.Mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace chameleon::bench;
  const ExperimentConfig config = ParseExperimentFlags(
      argc, argv, "Figure 11: clustering coefficient preservation");
  const auto datasets = LoadDatasets(config);
  RunMetricFigure("Figure 11: clustering coefficient preservation "
                  "(sampled possible worlds)",
                  "E[avg clustering coefficient]", ClusteringMetric, config,
                  datasets);
  std::printf("Reading: Chameleon's fine-grained perturbation preserves "
              "local clique\nstructure better than Rep-An (Section VI-B, "
              "Figure 11).\n");
  return 0;
}
