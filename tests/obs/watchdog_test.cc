// Stall-watchdog behavior: a span left idle past the threshold produces
// exactly one watchdog_stall record at stall onset (plus a STALLED
// /healthz view), an active phase that keeps recording flight events
// never trips it, and --watchdog_abort_after escalates a persistent
// stall into SIGABRT so the crash handler can take over. The abort case
// forks first, before any in-process watchdog threads exist.

#include "chameleon/obs/watchdog.h"

#include <sys/types.h>
#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "chameleon/obs/crash_handler.h"
#include "chameleon/obs/flight_recorder.h"
#include "chameleon/obs/obs.h"
#include "chameleon/obs/sink.h"
#include "chameleon/obs/trace.h"

namespace chameleon::obs {
namespace {

void SleepSeconds(double seconds) {
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
}

std::vector<std::string> FindRecords(const std::vector<std::string>& lines,
                                     std::string_view type) {
  std::vector<std::string> found;
  for (const std::string& line : lines) {
    if (JsonlStringField(line, "type") == type) found.push_back(line);
  }
  return found;
}

#if CHAMELEON_OBS_ENABLED
// Must run before the in-process cases: it forks, and forking after
// watchdog/tracer threads have run in this process is asking for
// trouble. A child whose only span sits idle gets the stall record,
// then the SIGABRT escalation, then crash forensics.
TEST(WatchdogTest, AbortAfterEscalatesToCrashForensics) {
  const std::string path = testing::TempDir() + "/watchdog_abort.jsonl";
  std::remove(path.c_str());

  std::fflush(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    ObsOptions obs_options;
    obs_options.metrics_out = path;
    obs_options.read_env = false;
    if (!InitObservability(obs_options).ok()) _exit(97);
    if (!InstallCrashHandler().ok()) _exit(95);
    WatchdogOptions options;
    options.stall_seconds = 0.2;
    options.abort_after_seconds = 0.2;
    options.poll_interval_seconds = 0.05;
    if (!StartGlobalWatchdog(options).ok()) _exit(96);
    CHOBS_SPAN(span, "hung_phase");
    SleepSeconds(10.0);  // the watchdog must interrupt this
    _exit(98);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFEXITED(status) && WEXITSTATUS(status) == 95) {
    GTEST_SKIP() << "crash forensics unavailable in this build";
  }

  ASSERT_TRUE(WIFSIGNALED(status)) << "watchdog never aborted the child";
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    for (std::string line; std::getline(in, line);) lines.push_back(line);
  }
  const std::vector<std::string> stalls = FindRecords(lines, "watchdog_stall");
  ASSERT_FALSE(stalls.empty()) << "no watchdog_stall before the abort";
  EXPECT_NE(stalls.front().find("hung_phase"), std::string::npos);
  bool saw_aborting = false;
  for (const std::string& stall : stalls) {
    if (stall.find("\"aborting\":true") != std::string::npos) {
      saw_aborting = true;
    }
  }
  EXPECT_TRUE(saw_aborting);
  // The SIGABRT went through the crash handler: backtrace + summary.
  ASSERT_FALSE(FindRecords(lines, "crash").empty());
  EXPECT_EQ(JsonlNumberField(FindRecords(lines, "crash").front(), "signal"),
            SIGABRT);
  ASSERT_FALSE(FindRecords(lines, "run_summary").empty());
}
#endif  // CHAMELEON_OBS_ENABLED

TEST(WatchdogTest, IdleSpanTripsOneStallRecord) {
  MemorySink sink;
  Tracer tracer(&sink, &GlobalMetrics());
  WatchdogOptions options;
  options.stall_seconds = 0.3;
  options.poll_interval_seconds = 0.05;
  options.sink = &sink;
  ASSERT_TRUE(StartGlobalWatchdog(options).ok());
  EXPECT_TRUE(WatchdogRunning());
  // Starting twice is refused.
  EXPECT_FALSE(StartGlobalWatchdog(options).ok());

  {
    TraceSpan span("stall_phase", &tracer);
    SleepSeconds(0.8);  // idle well past the threshold

    const std::vector<std::string> stalls =
        FindRecords(sink.lines(), "watchdog_stall");
    ASSERT_FALSE(stalls.empty()) << "idle span never tripped the watchdog";
    EXPECT_EQ(JsonlStringField(stalls.front(), "path"), "stall_phase");
    EXPECT_GE(JsonlNumberField(stalls.front(), "idle_ms").value_or(0.0),
              300.0);
    EXPECT_NE(stalls.front().find("\"aborting\":false"), std::string::npos);
    // One record per stall onset, not one per poll tick.
    EXPECT_EQ(stalls.size(), 1u);

    // The same liveness view drives /healthz.
    const std::string healthz = HealthzText();
    EXPECT_NE(healthz.find("stall_phase"), std::string::npos);
    EXPECT_NE(healthz.find("overall: STALLED"), std::string::npos);
  }
  StopGlobalWatchdog();
  EXPECT_FALSE(WatchdogRunning());
}

TEST(WatchdogTest, ActivePhaseNeverTrips) {
  MemorySink sink;
  Tracer tracer(&sink, &GlobalMetrics());
  WatchdogOptions options;
  // Threshold well above the tick cadence so scheduler jitter on a
  // loaded single-core host cannot fake a stall.
  options.stall_seconds = 0.5;
  options.poll_interval_seconds = 0.05;
  options.sink = &sink;
  ASSERT_TRUE(StartGlobalWatchdog(options).ok());

  {
    TraceSpan span("busy_phase", &tracer);
    // Keep the activity pulse fresh the whole time: progress heartbeats
    // and estimator checkpoints do exactly this in real runs.
    for (int i = 0; i < 16; ++i) {
      RecordFlightEvent(FlightEventKind::kCheckpoint, "busy_tick",
                        static_cast<std::uint64_t>(i), 16);
      SleepSeconds(0.05);
    }
    EXPECT_TRUE(FindRecords(sink.lines(), "watchdog_stall").empty());
    EXPECT_NE(HealthzText().find("overall: OK"), std::string::npos);
  }
  StopGlobalWatchdog();
}

TEST(WatchdogTest, RejectsNonPositiveStall) {
  WatchdogOptions options;
  options.stall_seconds = 0.0;
  EXPECT_FALSE(StartGlobalWatchdog(options).ok());
  EXPECT_FALSE(WatchdogRunning());
}

TEST(WatchdogTest, HealthzReportsNotRunningWhenOff) {
  ASSERT_FALSE(WatchdogRunning());
  const std::string healthz = HealthzText();
  EXPECT_NE(healthz.find("watchdog: not running"), std::string::npos);
  EXPECT_NE(healthz.find("overall: OK"), std::string::npos);
}

}  // namespace
}  // namespace chameleon::obs
