#!/usr/bin/env python3
"""Validates a chameleon_anonymize result JSON against an expectation.

Usage: check_anonymize.py <result.json> --expect=feasible|infeasible

Passes when the file is a well-formed chameleon-anonymize-v1 result
whose feasibility matches --expect and whose fields are internally
consistent (eps_hat = not_obfuscated / vertices, feasible implies
eps_hat <= eps and sigma > 0, perturbation/search counters sane).
Exits non-zero with a diagnostic otherwise. CI runs it over every
Table II variant on the generated er-2k graph as the anonymize smoke.
"""
import json
import math
import sys

REQUIRED_FIELDS = (
    "schema", "graph", "method", "k", "eps", "feasible", "sigma",
    "eps_hat", "not_obfuscated", "vertices", "adversary", "nodes",
    "edges", "input_mean_p", "published_mean_p", "attempts",
    "sigma_levels", "trials", "perturbed_edges", "excluded_vertices",
    "relevance_worlds", "relevance_wall_ms", "wall_ms", "seed",
)

METHODS = ("RSME", "ME", "RS", "Rep-An")


def fail(message: str) -> int:
    print(f"check_anonymize: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    path = None
    expect = None
    for arg in sys.argv[1:]:
        if arg.startswith("--expect="):
            expect = arg.split("=", 1)[1]
        elif not arg.startswith("--"):
            path = arg
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if path is None or expect not in ("feasible", "infeasible"):
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(path, encoding="utf-8") as handle:
            result = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"cannot load {path}: {error}")

    missing = [f for f in REQUIRED_FIELDS if f not in result]
    if missing:
        return fail(f"missing fields: {', '.join(missing)}")
    if result["schema"] != "chameleon-anonymize-v1":
        return fail(f"unexpected schema {result['schema']!r}")
    if result["method"] not in METHODS:
        return fail(f"unknown method {result['method']!r}")

    vertices = result["vertices"]
    not_obf = result["not_obfuscated"]
    if vertices <= 0 or not 0 <= not_obf <= vertices:
        return fail(f"bad counts: {not_obf}/{vertices}")
    if not math.isclose(result["eps_hat"], not_obf / vertices,
                        rel_tol=1e-9, abs_tol=1e-12):
        return fail(f"eps_hat {result['eps_hat']} != {not_obf}/{vertices}")
    if result["k"] <= 1 or not 0.0 <= result["eps"] <= 1.0:
        return fail(f"bad target k={result['k']} eps={result['eps']}")

    feasible = result["feasible"]
    if feasible:
        if result["eps_hat"] > result["eps"] + 1e-12:
            return fail("feasible but eps_hat exceeds eps")
        if result["sigma"] <= 0.0:
            return fail(f"feasible but sigma={result['sigma']}")
        if result["perturbed_edges"] <= 0:
            return fail("feasible but no edges were perturbed")
        if not 0.0 <= result["published_mean_p"] <= 1.0:
            return fail(f"published_mean_p {result['published_mean_p']} "
                        "outside [0, 1]")
    else:
        if result["eps_hat"] <= result["eps"]:
            return fail("infeasible but eps_hat within eps")

    if result["attempts"] < result["sigma_levels"]:
        return fail(f"attempts {result['attempts']} < "
                    f"levels {result['sigma_levels']}")
    if result["attempts"] > result["sigma_levels"] * result["trials"]:
        return fail(f"attempts {result['attempts']} exceed "
                    f"levels*trials")
    if not 0 <= result["excluded_vertices"] <= vertices:
        return fail(f"excluded {result['excluded_vertices']} of {vertices}")
    # Rep-An and ME skip the relevance estimator entirely.
    if result["method"] in ("ME", "Rep-An") and result["relevance_worlds"]:
        return fail(f"{result['method']} ran the relevance estimator")
    if result["method"] in ("RSME", "RS") and not result["relevance_worlds"]:
        return fail(f"{result['method']} skipped the relevance estimator")

    want = expect == "feasible"
    if feasible != want:
        return fail(f"expected {expect}, got feasible={feasible} "
                    f"(eps_hat={result['eps_hat']}, eps={result['eps']})")

    print(f"check_anonymize: OK: {result['method']} on {result['graph']} is "
          f"{expect} as expected (sigma={result['sigma']:.6g}, "
          f"eps_hat={result['eps_hat']:.6g}, "
          f"{result['perturbed_edges']} edges perturbed, "
          f"{result['attempts']} attempts)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
