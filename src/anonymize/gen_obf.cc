#include "chameleon/anonymize/gen_obf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "chameleon/obs/obs.h"
#include "chameleon/util/string_util.h"
#include "chameleon/util/timer.h"

namespace chameleon::anonymize {
namespace {

Status ValidateOptions(const graph::UncertainGraph& graph,
                       const std::vector<double>& uniqueness,
                       const std::vector<double>& priorities, double sigma,
                       const GenObfOptions& options) {
  if (uniqueness.size() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("uniqueness has %zu scores for %u nodes", uniqueness.size(),
                  graph.num_nodes()));
  }
  if (priorities.size() != graph.num_edges()) {
    return Status::InvalidArgument(
        StrFormat("priorities has %zu entries for %zu edges",
                  priorities.size(), graph.num_edges()));
  }
  if (!(sigma > 0.0)) {
    return Status::InvalidArgument("sigma must be positive");
  }
  if (options.candidate_fraction <= 0.0 || options.candidate_fraction > 1.0) {
    return Status::InvalidArgument("candidate_fraction must be in (0, 1]");
  }
  if (options.white_noise < 0.0 || options.white_noise > 1.0) {
    return Status::InvalidArgument("white_noise must be in [0, 1]");
  }
  return Status::OK();
}

/// Indices of the h highest-uniqueness vertices; ties broken toward the
/// lower id so the exclusion set is a pure function of the scores.
std::vector<bool> ExcludeHardest(const std::vector<double>& uniqueness,
                                 std::size_t h) {
  std::vector<NodeId> order(uniqueness.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (uniqueness[a] != uniqueness[b]) return uniqueness[a] > uniqueness[b];
    return a < b;
  });
  std::vector<bool> excluded(uniqueness.size(), false);
  for (std::size_t i = 0; i < h && i < order.size(); ++i) {
    excluded[order[i]] = true;
  }
  return excluded;
}

}  // namespace

Result<GenObfAttempt> GenObf(const graph::UncertainGraph& graph,
                             const std::vector<double>& uniqueness,
                             const std::vector<double>& priorities,
                             double sigma, const GenObfOptions& options,
                             Rng& rng) {
  CHAMELEON_RETURN_IF_ERROR(
      ValidateOptions(graph, uniqueness, priorities, sigma, options));
  CHOBS_SPAN(span, "anonymize/genobf");
  WallTimer timer;
  const auto& edges = graph.edges();

  // 1. Hardest-vertex exclusion: ⌈ε/2·|V|⌉ vertices, half the ε budget.
  const std::size_t h = static_cast<std::size_t>(
      std::ceil(0.5 * options.epsilon * graph.num_nodes()));
  const std::vector<bool> excluded = ExcludeHardest(uniqueness, h);

  std::vector<EdgeId> eligible;
  eligible.reserve(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (!excluded[edges[e].u] && !excluded[edges[e].v]) {
      eligible.push_back(static_cast<EdgeId>(e));
    }
  }

  // 2. Q-weighted candidate selection without replacement: keep the
  // ⌈c|E|⌉ smallest exponential keys −log(u)/Q^e. Zero-priority edges
  // get an infinite key and are chosen only when everything else ran
  // out. Keys are drawn in edge order, so the draw sequence — and the
  // candidate set — is a pure function of the rng stream.
  std::size_t want = static_cast<std::size_t>(
      std::ceil(options.candidate_fraction * static_cast<double>(edges.size())));
  want = std::min(want, eligible.size());
  std::vector<std::pair<double, EdgeId>> keyed;
  keyed.reserve(eligible.size());
  for (const EdgeId e : eligible) {
    const double u = 1.0 - rng.UniformDouble();  // (0, 1]
    const double w = priorities[e];
    const double key = w > 0.0 ? -std::log(u) / w
                               : std::numeric_limits<double>::infinity();
    keyed.emplace_back(key, e);
  }
  std::sort(keyed.begin(), keyed.end());
  keyed.resize(want);

  // 3. Perturb candidates in edge order (stable rng consumption). The
  // per-edge scale is σ·Q^e normalized by the candidate-mean priority.
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  double q_sum = 0.0;
  for (const auto& [key, e] : keyed) q_sum += priorities[e];
  const double q_mean = want > 0 ? q_sum / static_cast<double>(want) : 0.0;

  std::vector<double> perturbed(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) perturbed[e] = edges[e].p;
  for (const auto& [key, e] : keyed) {
    const double scale =
        q_mean > 0.0 ? sigma * priorities[e] / q_mean : sigma;
    perturbed[e] = PerturbProbability(perturbed[e], scale, options.noise,
                                      options.white_noise, rng);
  }

  graph::UncertainGraphBuilder builder(graph.num_nodes());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    CHAMELEON_RETURN_IF_ERROR(
        builder.AddEdge(edges[e].u, edges[e].v, perturbed[e]));
  }
  Result<graph::UncertainGraph> published = std::move(builder).Build();
  if (!published.ok()) return published.status();

  // 4. Anonymity check via the existing (k,ε) verifier.
  privacy::ObfuscationOptions verify;
  verify.k = options.k;
  verify.epsilon = options.epsilon;
  verify.adversary = options.adversary;
  verify.threads = options.threads;
  verify.keep_per_vertex = false;
  Result<privacy::ObfuscationCertificate> certificate =
      privacy::VerifyObfuscation(*published, verify);
  if (!certificate.ok()) return certificate.status();

  GenObfAttempt attempt;
  attempt.published = std::move(*published);
  attempt.certificate = std::move(*certificate);
  attempt.sigma = sigma;
  attempt.perturbed_edges = want;
  attempt.excluded_vertices = h;
  attempt.wall_ms = timer.ElapsedMillis();
  span.AddCount("candidates", want);
  span.AddCount("excluded", h);
  return attempt;
}

}  // namespace chameleon::anonymize
