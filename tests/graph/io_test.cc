#include "chameleon/graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace chameleon::graph {
namespace {

TEST(IoTest, ParseBasicEdgeList) {
  std::istringstream in(
      "# a comment\n"
      "0 1 0.5\n"
      "\n"
      "1 2 0.25\n");
  const Result<UncertainGraph> g = ParseEdgeList(in, "test");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g->edge(0).p, 0.5);
}

TEST(IoTest, NodesHeaderFixesIsolatedVertices) {
  std::istringstream in(
      "# nodes 10\n"
      "0 1 0.5\n");
  const Result<UncertainGraph> g = ParseEdgeList(in, "test");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 10u);
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(IoTest, MalformedLineFails) {
  std::istringstream in("0 1\n");
  const Result<UncertainGraph> g = ParseEdgeList(in, "bad.edges");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("bad.edges:1"), std::string::npos);
}

TEST(IoTest, BadProbabilityFails) {
  std::istringstream in("0 1 1.5\n");
  EXPECT_FALSE(ParseEdgeList(in, "test").ok());
}

TEST(IoTest, RoundTripThroughFile) {
  UncertainGraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.125).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3, 0.875).ok());
  const Result<UncertainGraph> original = std::move(builder).Build();
  ASSERT_TRUE(original.ok());

  const std::string path =
      testing::TempDir() + "/chameleon_io_roundtrip.edges";
  ASSERT_TRUE(WriteEdgeList(*original, path).ok());

  const Result<UncertainGraph> loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), original->num_nodes());
  ASSERT_EQ(loaded->num_edges(), original->num_edges());
  for (std::size_t e = 0; e < loaded->num_edges(); ++e) {
    EXPECT_EQ(loaded->edge(static_cast<EdgeId>(e)),
              original->edge(static_cast<EdgeId>(e)));
  }
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIoError) {
  const Result<UncertainGraph> g =
      ReadEdgeList("/nonexistent/chameleon.edges");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace chameleon::graph
