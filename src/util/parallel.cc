#include "chameleon/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "chameleon/obs/obs.h"
#include "chameleon/obs/parallel_stats.h"
#include "chameleon/util/timer.h"

namespace chameleon {
namespace {

std::size_t HardwareConcurrency() {
  // glibc re-reads sysfs on every std::thread::hardware_concurrency()
  // call (~microseconds) — cache it, the core count does not change
  // under us in any supported deployment.
  static const std::size_t cached = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : static_cast<std::size_t>(hw);
  }();
  return cached;
}

/// Minimum items per spawned worker. Spawning a thread costs on the
/// order of 100 µs; below this grain the fan-out tax exceeds any
/// parallel win (the BM_ObfVerifyEr2k8t regression: 7 spawned workers
/// for a 2000-vertex verify on one core ran ~2x slower than serial).
constexpr std::size_t kMinItemsPerWorker = 1024;

#if CHAMELEON_OBS_ENABLED
/// Instrumented fork-join path, taken only while observability is live.
/// Identical block boundaries, claim order semantics, and worker count
/// as the plain path — the only additions are MonotonicNanos() pairs
/// around each fn() call and per-worker accumulators, none of which
/// influence which (block, begin, end) triples `fn` sees. The caller
/// thread is worker 0; spawned threads are 1..workers-1.
void RunInstrumented(
    std::size_t n, std::size_t block_size, std::size_t blocks,
    std::size_t requested, std::size_t workers,
    const std::function<void(std::size_t block, std::size_t begin,
                             std::size_t end)>& fn) {
  obs::ParallelRegionStats stats;
  stats.name = obs::SpanPathForId(obs::CurrentSpanPathId());
  if (stats.name.empty()) stats.name = "(no_span)";
  stats.items = n;
  stats.block_size = block_size;
  stats.blocks = blocks;
  stats.requested = requested;
  stats.workers = workers;
  stats.per_worker.resize(workers);

  obs::ActiveParallelRegion active(stats.name, n, block_size, blocks,
                                   requested, workers);

  std::atomic<std::size_t> cursor{0};
  const auto drain = [&](std::size_t worker) {
    obs::ParallelWorkerSample& sample = stats.per_worker[worker];
    // Per-worker hardware counters: each thread owns its counter group
    // (spawned workers lazily open theirs on first sample), so the
    // region record can report per-thread-count IPC honestly instead of
    // attributing worker cycles to the caller.
    obs::HwCounterSample hw_open;
    const bool hw_valid =
        obs::HwCountersActive() && obs::SampleHwCounters(&hw_open);
    for (std::size_t block = cursor.fetch_add(1, std::memory_order_relaxed);
         block < blocks;
         block = cursor.fetch_add(1, std::memory_order_relaxed)) {
      const std::size_t begin = block * block_size;
      const std::size_t end = std::min(n, begin + block_size);
      const std::uint64_t t0 = MonotonicNanos();
      fn(block, begin, end);
      const std::uint64_t busy = MonotonicNanos() - t0;
      sample.busy_ns += busy;
      ++sample.blocks;
      active.NoteBlockDone(busy);
    }
    if (hw_valid) {
      obs::HwCounterSample hw_close;
      if (obs::SampleHwCounters(&hw_close)) {
        sample.hw = obs::ComputeHwDelta(hw_open, hw_close);
      }
    }
  };

  const std::uint64_t region_start = MonotonicNanos();
  if (workers <= 1) {
    drain(0);
    stats.wall_ns = MonotonicNanos() - region_start;
    obs::RecordParallelRegion(stats);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain, w);
  stats.spawn_ns = MonotonicNanos() - region_start;
  drain(0);
  const std::uint64_t join_start = MonotonicNanos();
  for (std::thread& t : pool) t.join();
  const std::uint64_t region_end = MonotonicNanos();
  stats.join_ns = region_end - join_start;
  stats.wall_ns = region_end - region_start;
  obs::RecordParallelRegion(stats);
}
#endif  // CHAMELEON_OBS_ENABLED

/// Process default for `threads < 1` requests; 0 = hardware concurrency.
std::atomic<int> g_default_threads{0};

}  // namespace

int EffectiveThreads(int requested) {
  if (requested >= 1) return requested;
  const int fallback = g_default_threads.load(std::memory_order_relaxed);
  if (fallback >= 1) return fallback;
  return static_cast<int>(HardwareConcurrency());
}

void SetDefaultThreads(int threads) {
  g_default_threads.store(threads < 1 ? 0 : threads,
                          std::memory_order_relaxed);
}

void ParallelForBlocks(
    std::size_t n, std::size_t block_size, int threads,
    const std::function<void(std::size_t block, std::size_t begin,
                             std::size_t end)>& fn) {
  if (n == 0 || block_size == 0) return;
  const std::size_t blocks = NumBlocks(n, block_size);
  // Worker count is a pure scheduling choice: block boundaries depend
  // only on (n, block_size), so clamping keeps results bit-identical.
  // Clamp to (a) the block count, (b) real cores — an explicit
  // --threads above hardware_concurrency only adds contention — and
  // (c) the minimum grain, so tiny inputs run inline on the caller.
  const std::size_t requested =
      static_cast<std::size_t>(EffectiveThreads(threads));
  std::size_t workers = std::min(requested, blocks);
  workers = std::min(workers, HardwareConcurrency());
  workers = std::min(workers,
                     std::max<std::size_t>(1, n / kMinItemsPerWorker));

#if CHAMELEON_OBS_ENABLED
  if (obs::Enabled()) {
    RunInstrumented(n, block_size, blocks, requested, workers, fn);
    return;
  }
#endif

  std::atomic<std::size_t> cursor{0};
  const auto drain = [&] {
    for (std::size_t block = cursor.fetch_add(1, std::memory_order_relaxed);
         block < blocks;
         block = cursor.fetch_add(1, std::memory_order_relaxed)) {
      const std::size_t begin = block * block_size;
      const std::size_t end = std::min(n, begin + block_size);
      fn(block, begin, end);
    }
  };

  if (workers <= 1) {
    drain();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();
  for (std::thread& t : pool) t.join();
}

}  // namespace chameleon
