#ifndef CHAMELEON_ANONYMIZE_REP_AN_H_
#define CHAMELEON_ANONYMIZE_REP_AN_H_

#include "chameleon/anonymize/chameleon.h"
#include "chameleon/graph/uncertain_graph.h"
#include "chameleon/util/status.h"

/// \file rep_an.h
/// The Rep-An baseline (paper Table II; Boldi et al., PAPERS.md
/// 1208.4145): collapse the uncertain graph to one representative
/// deterministic instance, then obfuscate that instance with the
/// deterministic special case of the Chameleon machinery — every input
/// probability is in {0, 1}, uniqueness and the adversary read
/// structural degrees, and the perturbation injects the uncertainty
/// that Boldi's method publishes. Reliability relevance is not part of
/// Boldi's scheme, so selection weighs uniqueness only (the ME column's
/// behavior) — which is also forced, since a p ∈ {0,1} graph gives the
/// reused-sampling estimator no absent-world samples for present edges.
///
/// Representative extraction: the m = round(Σ_e p(e)) highest-probability
/// edges (ties toward the earlier edge in canonical order), preserving
/// the expected edge count; or a fixed inclusion threshold on demand.

namespace chameleon::anonymize {

struct RepAnOptions {
  /// Driver configuration; adversary is overridden to structural degree
  /// and the relevance estimator is skipped regardless of its settings.
  ChameleonOptions driver;
  /// Inclusion threshold in [0, 1]; negative = expected-edge-count
  /// extraction (the default).
  double threshold = -1.0;
};

/// The representative instance: selected edges at p = 1, others dropped.
Result<graph::UncertainGraph> ExtractRepresentative(
    const graph::UncertainGraph& graph, double threshold);

/// Full Rep-An pipeline: extraction + deterministic obfuscation. The
/// result's variant is kRepAn and its certificate/trace come from the
/// driver run on the representative instance.
Result<AnonymizeResult> RepAnAnonymize(const graph::UncertainGraph& graph,
                                       const RepAnOptions& options);

}  // namespace chameleon::anonymize

#endif  // CHAMELEON_ANONYMIZE_REP_AN_H_
