#!/usr/bin/env python3
"""Validates hardware-counter telemetry in a chameleon metrics JSONL.

Usage: check_hw.py <metrics.jsonl> [--expect=available|unavailable|auto]
           [--scaling=scaling.json]

The exactly-one-of contract: a run holds either >= 1 "hw_counters"
record (counters were live) or exactly one "hw_counters_unavailable"
record (graceful degradation) — never both, never neither.
--expect=available / --expect=unavailable pins which side CI demands;
auto (the default) accepts either side but still enforces the contract.

Every hw_counters record must carry the full schema: path, backend in
{perf, emulated}, class in the toplev-lite enum, non-negative integer
counters, and derived rates consistent with the raw counters
(ipc ~ instructions/cycles and so on).

--scaling=scaling.json additionally validates a chameleon_scaling sweep:
every row carries "ipc" and "cache_miss_rate" keys (numbers when hw was
live, null otherwise) and the top level carries a "bandwidth_verdict"
string. Exits 0 on success, 1 on a validation failure, 2 on usage
errors.
"""
import json
import sys

BACKENDS = {"perf", "emulated"}
CLASSES = {
    "unknown",
    "frontend-bound",
    "backend-memory-bound",
    "compute-bound",
    "balanced",
}
COUNTER_FIELDS = (
    "spans",
    "cycles",
    "instructions",
    "cache_refs",
    "cache_misses",
    "branch_misses",
    "stalled_backend",
    "task_clock_ns",
)
RATE_FIELDS = ("ipc", "cache_miss_rate", "branch_miss_rate")
VERDICTS = {"bandwidth-saturated", "no-saturation", "unavailable"}


def fail(message: str) -> int:
    print(message, file=sys.stderr)
    return 1


def check_record(path: str, lineno: int, obj: dict) -> str | None:
    """Returns a diagnostic for a malformed hw_counters record, or None."""
    where = f"{path}:{lineno}"
    if not obj.get("path"):
        return f"{where}: hw_counters record without a span path"
    if obj.get("backend") not in BACKENDS:
        return f"{where}: bad backend {obj.get('backend')!r}"
    if obj.get("class") not in CLASSES:
        return f"{where}: bad class {obj.get('class')!r}"
    for field in COUNTER_FIELDS:
        value = obj.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            return f"{where}: counter {field}={value!r} is not a " \
                   f"non-negative number"
    for field in RATE_FIELDS:
        value = obj.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            return f"{where}: rate {field}={value!r} is not a " \
                   f"non-negative number"
    if obj["spans"] < 1:
        return f"{where}: aggregate with zero spans was emitted"
    # The derived rates must match the raw counters they summarize
    # (loose tolerance: the writer rounds to a few decimals).
    if obj["cycles"] > 0:
        ipc = obj["instructions"] / obj["cycles"]
        if abs(ipc - obj["ipc"]) > max(0.01, 0.01 * ipc):
            return f"{where}: ipc {obj['ipc']} inconsistent with " \
                   f"instructions/cycles = {ipc:.4f}"
    if obj["cache_refs"] > 0:
        cmr = obj["cache_misses"] / obj["cache_refs"]
        if abs(cmr - obj["cache_miss_rate"]) > max(0.01, 0.01 * cmr):
            return f"{where}: cache_miss_rate {obj['cache_miss_rate']} " \
                   f"inconsistent with misses/refs = {cmr:.4f}"
    return None


def check_scaling(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as stream:
            doc = json.load(stream)
    except (OSError, json.JSONDecodeError) as err:
        return fail(f"{path}: unreadable scaling json: {err}")
    verdict = doc.get("bandwidth_verdict")
    if verdict not in VERDICTS:
        return fail(f"{path}: bandwidth_verdict {verdict!r} not in "
                    f"{sorted(VERDICTS)}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(f"{path}: no sweep rows")
    hw_rows = 0
    for i, row in enumerate(rows):
        for key in ("ipc", "cache_miss_rate"):
            if key not in row:
                return fail(f"{path}: row {i} is missing {key!r}")
            value = row[key]
            if value is not None and not isinstance(value, (int, float)):
                return fail(f"{path}: row {i} {key}={value!r} is neither "
                            f"a number nor null")
        if row["ipc"] is not None:
            hw_rows += 1
    if verdict != "unavailable" and hw_rows == 0:
        return fail(f"{path}: verdict {verdict!r} but no row carries hw "
                    f"data")
    print(f"{path}: {len(rows)} rows ({hw_rows} with hw data), "
          f"bandwidth_verdict={verdict}")
    return 0


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    opts = [a for a in sys.argv[1:] if a.startswith("--")]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = args[0]
    expect = "auto"
    scaling = None
    for opt in opts:
        if opt.startswith("--expect="):
            expect = opt.split("=", 1)[1]
            if expect not in ("available", "unavailable", "auto"):
                print(__doc__, file=sys.stderr)
                return 2
        elif opt.startswith("--scaling="):
            scaling = opt.split("=", 1)[1]
        else:
            print(__doc__, file=sys.stderr)
            return 2

    hw_records = []
    unavailable = []
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                return fail(f"{path}:{lineno}: invalid JSON: {err}")
            kind = obj.get("type")
            if kind == "hw_counters":
                diag = check_record(path, lineno, obj)
                if diag is not None:
                    return fail(diag)
                hw_records.append(obj)
            elif kind == "hw_counters_unavailable":
                if not obj.get("reason"):
                    return fail(f"{path}:{lineno}: unavailable record "
                                f"without a reason")
                unavailable.append(obj)

    # The exactly-one-of contract.
    if hw_records and unavailable:
        return fail(f"{path}: both hw_counters ({len(hw_records)}) and "
                    f"hw_counters_unavailable ({len(unavailable)}) present")
    if not hw_records and len(unavailable) != 1:
        return fail(f"{path}: no hw_counters and "
                    f"{len(unavailable)} hw_counters_unavailable records "
                    f"(want exactly 1)")
    if expect == "available" and not hw_records:
        return fail(f"{path}: expected live counters, got unavailable "
                    f"({unavailable[0].get('reason')})")
    if expect == "unavailable" and hw_records:
        return fail(f"{path}: expected unavailable fallback, got "
                    f"{len(hw_records)} hw_counters records")

    if hw_records:
        nonzero = sum(1 for r in hw_records if r["ipc"] > 0)
        print(f"{path}: {len(hw_records)} hw_counters records "
              f"({nonzero} with nonzero ipc), backend="
              f"{hw_records[0]['backend']}")
        if nonzero == 0:
            return fail(f"{path}: every hw_counters record has ipc 0")
    else:
        print(f"{path}: counters unavailable "
              f"({unavailable[0].get('reason')})")

    if scaling is not None:
        return check_scaling(scaling)
    return 0


if __name__ == "__main__":
    sys.exit(main())
