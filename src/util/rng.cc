#include "chameleon/util/rng.h"

#include <algorithm>
#include <cmath>

namespace chameleon {

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  // Lemire's nearly-divisionless method: multiply-shift, with a rejection
  // loop entered only for the biased low range.
  std::uint64_t x = (*this)();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller on (0, 1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::TruncatedGaussian(double mean, double sigma, double lo,
                              double hi) {
  const double clamped = std::min(std::max(mean, lo), hi);
  if (sigma <= 0.0 || lo >= hi) return clamped;
  const double a = (lo - mean) / sigma;
  const double b = (hi - mean) / sigma;
  double z = 0.0;
  if (b - a < 1.0) {
    // Narrow window anywhere on the axis: uniform proposal, accepted
    // against the density normalized by its maximum over [a, b] (attained
    // at the mode when inside, else at the nearer endpoint). Acceptance
    // is bounded below by exp(-(b-a)·max|a|,|b|/2 - (b-a)²/8) ≥ e^{-1}
    // for windows this narrow near the body; tails shrink the window in
    // z-units anyway.
    const double peak = (a > 0.0) ? a : (b < 0.0 ? b : 0.0);
    do {
      z = Uniform(a, b);
    } while (UniformDouble() > std::exp(0.5 * (peak * peak - z * z)));
  } else if (a <= 0.0 && b >= 0.0) {
    // Window covers the mode and is at least one sigma wide: plain
    // rejection from the untruncated normal accepts with probability
    // Φ(b) − Φ(a) ≥ Φ(1) − Φ(0) ≈ 0.34.
    do {
      z = Gaussian();
    } while (z < a || z > b);
  } else {
    // One-sided tail window. Mirror so the window sits at a2 > 0, then
    // use Robert's translated-exponential proposal with the optimal rate
    // alpha = (a2 + sqrt(a2² + 4)) / 2.
    const bool flip = b <= 0.0;
    const double a2 = flip ? -b : a;
    const double b2 = flip ? -a : b;
    const double alpha = 0.5 * (a2 + std::sqrt(a2 * a2 + 4.0));
    for (;;) {
      const double u = 1.0 - UniformDouble();  // (0, 1]
      z = a2 - std::log(u) / alpha;
      if (z > b2) continue;
      const double d = z - alpha;
      if (UniformDouble() <= std::exp(-0.5 * d * d)) break;
    }
    if (flip) z = -z;
  }
  // FP round-off in mean + sigma*z can escape [lo, hi] by one ulp.
  return std::min(std::max(mean + sigma * z, lo), hi);
}

}  // namespace chameleon
