// Tails a chameleon metrics JSONL stream and renders live progress: one
// line per heartbeat / estimator-convergence record, ending with the run
// summary. Point it at the file a long Monte Carlo run is writing:
//
//   chameleon_mc_reliability --worlds=100000000 --metrics_out=run.jsonl &
//   chameleon_watch run.jsonl
//   [reliability/two_terminal/sample_worlds] 1534000/100000000 (1.5%) 3.1e+06/s ETA 31.7s
//   [reliability/two_terminal] n=2097152 mean=0.2513 ci_halfwidth=0.000587 (1.3e+06/s)
//   ...
//   run finished: wall 32188.4 ms
//
// Follows the file until a run_summary record arrives (or forever with a
// stream that never finishes — interrupt with Ctrl-C). --once renders the
// current contents, prints a final convergence table, and exits; use it
// on completed runs and in scripts.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "chameleon/obs/run_context.h"
#include "chameleon/obs/sink.h"
#include "chameleon/util/flags.h"
#include "chameleon/util/status.h"
#include "chameleon/util/string_util.h"

namespace chameleon {
namespace {

struct WatchState {
  std::map<std::string, std::string> last_estimator_line;
  std::set<std::string> unknown_types_noted;
  std::size_t records = 0;
  bool summary_seen = false;
  double wall_ms = 0.0;
};

/// Renders one JSONL record as a human line; empty string for record
/// types the watcher does not surface (spans, snapshots). Unknown types
/// are forward-compatible passthrough: they count toward the record
/// total and produce one stderr note per type, never a per-record
/// warning — newer writers may emit records this build has never heard
/// of.
std::string RenderRecord(const std::string& line, WatchState* state) {
  const auto type = obs::JsonlStringField(line, "type");
  if (!type.has_value()) return "";
  ++state->records;
  if (*type == "manifest") {
    const auto tool = obs::JsonlStringField(line, "tool");
    const auto describe = obs::JsonlStringField(line, "git_describe");
    return StrFormat("watching %s (%s)\n", tool.value_or("?").c_str(),
                     describe.value_or("unknown build").c_str());
  }
  if (*type == "progress") {
    const auto label = obs::JsonlStringField(line, "label");
    const double done = obs::JsonlNumberField(line, "done").value_or(0.0);
    const double total = obs::JsonlNumberField(line, "total").value_or(0.0);
    const double rate =
        obs::JsonlNumberField(line, "rate_per_s").value_or(0.0);
    const double eta = obs::JsonlNumberField(line, "eta_s").value_or(0.0);
    std::string text = StrFormat("[%s] %.0f", label.value_or("?").c_str(),
                                 done);
    if (total > 0.0) {
      text += StrFormat("/%.0f (%.1f%%)", total, 100.0 * done / total);
    }
    text += StrFormat(" %.3g/s", rate);
    if (total > done && rate > 0.0) text += StrFormat(" ETA %.1fs", eta);
    if (line.find("\"final\":true") != std::string::npos) {
      text += " [finished]";
    }
    return text + "\n";
  }
  if (*type == "estimator_progress") {
    const auto label = obs::JsonlStringField(line, "label");
    const double samples =
        obs::JsonlNumberField(line, "samples").value_or(0.0);
    const double mean = obs::JsonlNumberField(line, "mean").value_or(0.0);
    const double hw =
        obs::JsonlNumberField(line, "ci_halfwidth").value_or(0.0);
    const double rate =
        obs::JsonlNumberField(line, "rate_per_s").value_or(0.0);
    std::string text =
        StrFormat("[%s] n=%.0f mean=%.6g ci_halfwidth=%.4g (%.3g/s)",
                  label.value_or("?").c_str(), samples, mean, hw, rate);
    if (line.find("\"final\":true") != std::string::npos) {
      text += line.find("\"stopped_early\":true") != std::string::npos
                  ? " [stopped early]"
                  : " [done]";
    }
    state->last_estimator_line[label.value_or("?")] = text;
    return text + "\n";
  }
  if (*type == "status_server") {
    const auto address = obs::JsonlStringField(line, "address");
    const double port = obs::JsonlNumberField(line, "port").value_or(0.0);
    return StrFormat("statusz live at http://%s:%.0f/statusz\n",
                     address.value_or("127.0.0.1").c_str(), port);
  }
  if (*type == "graph_summary") {
    const auto origin = obs::JsonlStringField(line, "origin");
    const double nodes = obs::JsonlNumberField(line, "nodes").value_or(0.0);
    const double edges = obs::JsonlNumberField(line, "edges").value_or(0.0);
    const double mean_p =
        obs::JsonlNumberField(line, "mean_p").value_or(0.0);
    return StrFormat("graph %s: %.0f nodes, %.0f edges, mean p %.3f\n",
                     origin.value_or("?").c_str(), nodes, edges, mean_p);
  }
  if (*type == "profile") {
    const double samples =
        obs::JsonlNumberField(line, "samples").value_or(0.0);
    const double hz = obs::JsonlNumberField(line, "hz").value_or(0.0);
    const double dropped =
        obs::JsonlNumberField(line, "dropped").value_or(0.0);
    return StrFormat(
        "profile captured: %.0f samples at %.0f Hz (%.0f dropped)\n",
        samples, hz, dropped);
  }
  if (*type == "privacy_check") {
    const double k = obs::JsonlNumberField(line, "k").value_or(0.0);
    const double eps = obs::JsonlNumberField(line, "eps").value_or(0.0);
    const double eps_hat =
        obs::JsonlNumberField(line, "eps_hat").value_or(0.0);
    const double vertices =
        obs::JsonlNumberField(line, "vertices").value_or(0.0);
    const double not_obf =
        obs::JsonlNumberField(line, "not_obfuscated").value_or(0.0);
    const bool obfuscated =
        line.find("\"obfuscated\":true") != std::string::npos;
    return StrFormat(
        "(k=%.4g, eps=%.4g)-obfuscation %s: eps_hat=%.6g "
        "(%.0f/%.0f vertices exposed)\n",
        k, eps, obfuscated ? "SATISFIED" : "VIOLATED", eps_hat, not_obf,
        vertices);
  }
  if (*type == "anonymize_attempt") {
    const auto method = obs::JsonlStringField(line, "method");
    const auto phase = obs::JsonlStringField(line, "phase");
    const double level = obs::JsonlNumberField(line, "level").value_or(0.0);
    const double attempt =
        obs::JsonlNumberField(line, "attempt").value_or(0.0);
    const double sigma = obs::JsonlNumberField(line, "sigma").value_or(0.0);
    const double eps_hat =
        obs::JsonlNumberField(line, "eps_hat").value_or(0.0);
    const bool success = line.find("\"success\":true") != std::string::npos;
    return StrFormat(
        "%s %s level %.0f attempt %.0f: sigma=%.4g -> eps_hat=%.4g %s\n",
        method.value_or("?").c_str(), phase.value_or("?").c_str(), level,
        attempt, sigma, eps_hat, success ? "OK" : "failed");
  }
  if (*type == "sigma_search") {
    const auto method = obs::JsonlStringField(line, "method");
    const auto phase = obs::JsonlStringField(line, "phase");
    const double level = obs::JsonlNumberField(line, "level").value_or(0.0);
    const double sigma = obs::JsonlNumberField(line, "sigma").value_or(0.0);
    const double best =
        obs::JsonlNumberField(line, "best_sigma").value_or(0.0);
    const bool success = line.find("\"success\":true") != std::string::npos;
    if (phase.has_value() && *phase == "final") {
      return StrFormat("%s sigma search done: best sigma=%.4g (%s)\n",
                       method.value_or("?").c_str(), best,
                       success ? "feasible" : "infeasible");
    }
    return StrFormat("%s sigma search [%s] level %.0f: sigma=%.4g %s "
                     "(best %.4g)\n",
                     method.value_or("?").c_str(),
                     phase.value_or("?").c_str(), level, sigma,
                     success ? "succeeded" : "failed", best);
  }
  if (*type == "relevance_progress") {
    const auto label = obs::JsonlStringField(line, "label");
    const double worlds =
        obs::JsonlNumberField(line, "worlds").value_or(0.0);
    const double total =
        obs::JsonlNumberField(line, "total_worlds").value_or(0.0);
    const double mean_err =
        obs::JsonlNumberField(line, "mean_err").value_or(0.0);
    const double rel_err =
        obs::JsonlNumberField(line, "rel_err").value_or(0.0);
    const bool final_row = line.find("\"final\":true") != std::string::npos;
    return StrFormat(
        "relevance %s: %.0f/%.0f worlds, mean ERR %.4g, rel err %.4g%s\n",
        label.value_or("?").c_str(), worlds, total, mean_err, rel_err,
        final_row ? " [final]" : "");
  }
  if (*type == "crash") {
    const auto name = obs::JsonlStringField(line, "signal_name");
    const double signal =
        obs::JsonlNumberField(line, "signal").value_or(0.0);
    const auto addr = obs::JsonlStringField(line, "fault_addr");
    const auto span = obs::JsonlStringField(line, "span_path");
    std::string text = StrFormat("CRASH: %s (signal %.0f)",
                                 name.value_or("?").c_str(), signal);
    if (addr.has_value()) text += StrFormat(" at %s", addr->c_str());
    if (span.has_value()) text += StrFormat(" in span %s", span->c_str());
    // Frame count without parsing the array: the frames are the only
    // place a crash record nests strings.
    std::size_t frames = 0;
    const std::size_t open = line.find("\"frames\":[");
    if (open != std::string::npos) {
      const std::size_t close = line.find(']', open);
      for (std::size_t i = open + 10; i < close && i < line.size(); ++i) {
        if (line[i] == '"' && line[i - 1] != '\\') ++frames;
      }
      frames /= 2;
    }
    text += StrFormat(" — %zu frames, run obs_dump for the backtrace",
                      frames);
    return text + "\n";
  }
  if (*type == "watchdog_stall") {
    const auto path = obs::JsonlStringField(line, "path");
    const double idle_ms =
        obs::JsonlNumberField(line, "idle_ms").value_or(0.0);
    const double stall_s =
        obs::JsonlNumberField(line, "stall_seconds").value_or(0.0);
    const bool aborting =
        line.find("\"aborting\":true") != std::string::npos;
    return StrFormat("WATCHDOG: %s idle %.1fs (threshold %.1fs)%s\n",
                     path.value_or("?").c_str(), idle_ms * 1e-3, stall_s,
                     aborting ? " — aborting the run" : "");
  }
  if (*type == "flight_event_dump") {
    const double threads =
        obs::JsonlNumberField(line, "threads").value_or(0.0);
    const double events =
        obs::JsonlNumberField(line, "events").value_or(0.0);
    return StrFormat(
        "flight recorder dumped: %.0f events across %.0f threads (see "
        "obs_dump for the tail)\n",
        events, threads);
  }
  if (*type == "parallel_region") {
    const auto name = obs::JsonlStringField(line, "name");
    const double workers =
        obs::JsonlNumberField(line, "workers").value_or(0.0);
    const double requested =
        obs::JsonlNumberField(line, "requested").value_or(0.0);
    const double wall_ns =
        obs::JsonlNumberField(line, "wall_ns").value_or(0.0);
    if (line.find("\"partial\":true") != std::string::npos) {
      const double done =
          obs::JsonlNumberField(line, "blocks_done").value_or(0.0);
      const double blocks =
          obs::JsonlNumberField(line, "blocks").value_or(0.0);
      return StrFormat(
          "parallel %s INTERRUPTED: %.0f/%.0f blocks done on %.0f workers\n",
          name.value_or("?").c_str(), done, blocks, workers);
    }
    const double speedup =
        obs::JsonlNumberField(line, "speedup").value_or(0.0);
    const double efficiency =
        obs::JsonlNumberField(line, "efficiency").value_or(0.0);
    const double imbalance =
        obs::JsonlNumberField(line, "imbalance").value_or(0.0);
    return StrFormat(
        "parallel %s: %.0f/%.0f workers, %.2f ms, speedup %.2fx "
        "(eff %.0f%%, imbalance %.2f)\n",
        name.value_or("?").c_str(), workers, requested, wall_ns * 1e-6,
        speedup, efficiency * 100.0, imbalance);
  }
  if (*type == "mutex_wait") {
    const auto name = obs::JsonlStringField(line, "name");
    const double wait_ns =
        obs::JsonlNumberField(line, "wait_ns").value_or(0.0);
    const double long_waits =
        obs::JsonlNumberField(line, "long_waits").value_or(0.0);
    return StrFormat(
        "LOCK WAIT: mutex %s blocked a thread for %.2f ms "
        "(long wait #%.0f)\n",
        name.value_or("?").c_str(), wait_ns * 1e-6, long_waits);
  }
  if (*type == "hw_counters") {
    const auto path = obs::JsonlStringField(line, "path");
    const auto cls = obs::JsonlStringField(line, "class");
    const double ipc = obs::JsonlNumberField(line, "ipc").value_or(0.0);
    const double cmr =
        obs::JsonlNumberField(line, "cache_miss_rate").value_or(0.0);
    const double spans =
        obs::JsonlNumberField(line, "spans").value_or(0.0);
    return StrFormat(
        "hw %s: ipc %.2f, cache miss %.1f%% over %.0f spans [%s]\n",
        path.value_or("?").c_str(), ipc, cmr * 100.0, spans,
        cls.value_or("unknown").c_str());
  }
  if (*type == "hw_counters_unavailable") {
    const auto reason = obs::JsonlStringField(line, "reason");
    return StrFormat("hw counters unavailable: %s\n",
                     reason.value_or("?").c_str());
  }
  if (*type == "heap_profile") {
    const auto span = obs::JsonlStringField(line, "span_path");
    const double cum =
        obs::JsonlNumberField(line, "cum_bytes").value_or(0.0);
    const double live =
        obs::JsonlNumberField(line, "live_bytes").value_or(0.0);
    const double samples =
        obs::JsonlNumberField(line, "samples").value_or(0.0);
    return StrFormat(
        "heap %s: cum %.2f MiB, live %.1f KiB over %.0f samples%s\n",
        span.value_or("?").c_str(), cum / 1048576.0, live / 1024.0,
        samples,
        line.find("\"allowlisted\":true") != std::string::npos
            ? " [allowlisted]"
            : "");
  }
  if (*type == "heap_timeline") {
    const double samples =
        obs::JsonlNumberField(line, "samples").value_or(0.0);
    const double est_peak =
        obs::JsonlNumberField(line, "est_peak_bytes").value_or(0.0);
    const double exact_cum =
        obs::JsonlNumberField(line, "exact_cum_bytes").value_or(0.0);
    return StrFormat(
        "heap profile: %.0f samples, est peak %.2f MiB, exact cum "
        "%.2f MiB (see obs_dump --heap)\n",
        samples, est_peak / 1048576.0, exact_cum / 1048576.0);
  }
  if (*type == "heap_profiler_unavailable") {
    const auto reason = obs::JsonlStringField(line, "reason");
    return StrFormat("heap profiler unavailable: %s\n",
                     reason.value_or("?").c_str());
  }
  if (*type == "run_summary") {
    state->summary_seen = true;
    state->wall_ms = obs::JsonlNumberField(line, "wall_ms").value_or(0.0);
    std::string text = StrFormat("run finished: wall %.1f ms", state->wall_ms);
    if (const auto signal = obs::JsonlNumberField(line, "signal");
        signal.has_value()) {
      text += StrFormat(" (killed by signal %.0f)", *signal);
    }
    return text + "\n";
  }
  if (*type != "span" && *type != "snapshot" &&
      state->unknown_types_noted.insert(*type).second) {
    std::fprintf(stderr,
                 "note: passing through unknown record type \"%s\"\n",
                 type->c_str());
  }
  return "";
}

void PrintConvergenceSummary(const WatchState& state) {
  if (state.last_estimator_line.empty()) return;
  std::printf("\nfinal estimator state:\n");
  for (const auto& [label, text] : state.last_estimator_line) {
    std::printf("  %s\n", text.c_str());
  }
}

int Watch(const std::string& path, bool once, std::int64_t interval_ms) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  WatchState state;
  std::string line;
  for (;;) {
    for (;;) {
      // Remember where this line starts: if the file currently ends
      // mid-line (the writer is between write() and the newline),
      // getline would consume the fragment and the remainder appended
      // before the next poll would parse as a separate garbage record.
      // Rewind to the fragment start instead and re-read it whole.
      const std::istream::pos_type line_start = in.tellg();
      if (!std::getline(in, line)) break;
      if (in.eof() && !once) {
        in.clear();
        in.seekg(line_start);
        break;
      }
      const std::string text = RenderRecord(line, &state);
      if (!text.empty()) {
        std::fputs(text.c_str(), stdout);
        std::fflush(stdout);
      }
    }
    if (once || state.summary_seen) break;
    // EOF: clear the stream state and poll for appended lines.
    in.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  if (once) {
    PrintConvergenceSummary(state);
    if (!state.summary_seen) {
      std::printf("(no run_summary yet — run still in flight?)\n");
    }
  }
  if (state.records == 0) {
    std::fprintf(stderr,
                 "%s: no chameleon obs records found (is it a metrics "
                 "JSONL?)\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

int Run(int argc, char** argv) {
  FlagSet flags(
      "chameleon_watch: tail a metrics JSONL stream and render live "
      "progress");
  flags.AddString("input", "", "metrics JSONL path (or first positional)");
  flags.AddBool("once", false,
                "render current contents + convergence summary, then exit");
  flags.AddInt64("interval_ms", 500, "poll interval while following");
  flags.AddBool("version", false, "print build provenance and exit");
  flags.AddBool("help", false, "show usage");

  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "error: %s\n%s", s.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::fprintf(stdout, "%s", flags.Usage().c_str());
    return 0;
  }
  if (flags.GetBool("version")) {
    std::fprintf(stdout, "%s", obs::VersionString("chameleon_watch").c_str());
    return 0;
  }
  std::string path = flags.GetString("input");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional().front();
  }
  if (path.empty()) {
    std::fprintf(stderr, "error: no input file\n%s", flags.Usage().c_str());
    return 2;
  }
  const std::int64_t interval_ms = flags.GetInt64("interval_ms");
  if (interval_ms <= 0) {
    std::fprintf(stderr, "error: --interval_ms must be positive\n");
    return 2;
  }
  static_cast<void>(obs::InstallCrashForensics());
  return Watch(path, flags.GetBool("once"), interval_ms);
}

}  // namespace
}  // namespace chameleon

int main(int argc, char** argv) { return chameleon::Run(argc, argv); }
