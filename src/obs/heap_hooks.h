#ifndef CHAMELEON_SRC_OBS_HEAP_HOOKS_H_
#define CHAMELEON_SRC_OBS_HEAP_HOOKS_H_

// Allocation-hook fast path shared between the replacement operator
// new/delete (alloc_stats.cc) and the heap profiler. src/obs-private —
// the hooks must inline into the operators so the dormant cost is one
// relaxed load, not a cross-TU call per allocation.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace chameleon::obs::internal {

/// Nonzero while the sampler accepts allocations. The operators check
/// it before anything else; StartHeapProfiler flips it last.
extern std::atomic<std::uint32_t> g_heap_sampling_active;

/// Bytes left until this thread's next sample. Signed so one oversized
/// allocation can push it below zero; trivially initialized (0 forces
/// the first active-path hit onto the slow path, which seeds the
/// exponential countdown before deciding whether to sample).
extern thread_local std::int64_t tls_heap_countdown;

/// Records one sampled allocation and refills the countdown. Never
/// samples recursively: the sampler's own allocations only refill.
void HeapSampleSlow(void* ptr, std::size_t size) noexcept;

/// Removes `ptr` from the live map (if sampled) and credits its site.
void HeapFreeSlow(void* ptr) noexcept;

inline void HeapHookAlloc(void* ptr, std::size_t size) noexcept {
  if (g_heap_sampling_active.load(std::memory_order_relaxed) == 0) return;
  if (ptr == nullptr) return;
  tls_heap_countdown -= static_cast<std::int64_t>(size);
  if (tls_heap_countdown < 0) HeapSampleSlow(ptr, size);
}

inline void HeapHookFree(void* ptr) noexcept {
  if (ptr == nullptr) return;
  if (g_heap_sampling_active.load(std::memory_order_relaxed) == 0) return;
  HeapFreeSlow(ptr);
}

}  // namespace chameleon::obs::internal

#endif  // CHAMELEON_SRC_OBS_HEAP_HOOKS_H_
