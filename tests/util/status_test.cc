#include "chameleon/util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace chameleon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad p");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad p");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad p");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = *std::move(r);
  EXPECT_EQ(moved, "payload");
}

Status Half(int x, int* out) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  *out = x / 2;
  return Status::OK();
}

Status UseReturnIfError(int x, int* out) {
  CHAMELEON_RETURN_IF_ERROR(Half(x, out));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  int out = 0;
  EXPECT_TRUE(UseReturnIfError(4, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(UseReturnIfError(3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace chameleon
