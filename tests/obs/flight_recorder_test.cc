// Flight-recorder ring semantics: overwrite-oldest with drop
// accounting, label truncation, dormant no-op through the macro, and a
// well-formed flight_event_dump record. The concurrent case hammers
// four writer threads and snapshots after they quiesce, which is the
// pattern the crash/shutdown consumers use (dump after the world
// stopped) — it doubles as the TSan exercise for the lock-free path.

#include "chameleon/obs/flight_recorder.h"

#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chameleon/obs/obs.h"
#include "chameleon/obs/sink.h"

namespace chameleon::obs {
namespace {

/// Snapshot of the calling thread's ring, identified by the label
/// prefix its events carry (rings persist across tests in this binary,
/// so tests use distinct labels instead of assuming a fresh ring).
FlightThreadSnapshot SnapshotWithLabel(const std::string& prefix) {
  for (const FlightThreadSnapshot& snapshot : SnapshotFlightRecorder()) {
    for (const FlightEvent& event : snapshot.events) {
      if (std::string(event.label).rfind(prefix, 0) == 0) return snapshot;
    }
  }
  return {};
}

TEST(FlightRecorderTest, OverflowKeepsNewestAndCountsDropped) {
  const std::uint64_t before = FlightEventsRecorded();
  const std::uint32_t total = kFlightRingCapacity + 100;
  for (std::uint32_t i = 0; i < total; ++i) {
    RecordFlightEvent(FlightEventKind::kGeneric,
                      "overflow_" + std::to_string(i), i, 0);
  }
  EXPECT_EQ(FlightEventsRecorded(), before + total);

  const FlightThreadSnapshot snapshot = SnapshotWithLabel("overflow_");
  ASSERT_FALSE(snapshot.events.empty());
  EXPECT_LE(snapshot.events.size(), kFlightRingCapacity);
  EXPECT_GE(snapshot.recorded, total);
  EXPECT_EQ(snapshot.dropped, snapshot.recorded - snapshot.events.size());
  EXPECT_GE(snapshot.dropped, 100u);
  // Newest event survives; the first 100 were overwritten.
  const FlightEvent& newest = snapshot.events.back();
  EXPECT_EQ(std::string(newest.label),
            "overflow_" + std::to_string(total - 1));
  EXPECT_EQ(newest.a, total - 1);
  for (const FlightEvent& event : snapshot.events) {
    EXPECT_NE(std::string(event.label), "overflow_0");
  }
}

TEST(FlightRecorderTest, EventsCarryMonotoneTimestamps) {
  RecordFlightEvent(FlightEventKind::kCheckpoint, "mono_a", 1, 2);
  RecordFlightEvent(FlightEventKind::kCheckpoint, "mono_b", 3, 4);
  const FlightThreadSnapshot snapshot = SnapshotWithLabel("mono_");
  ASSERT_GE(snapshot.events.size(), 2u);
  for (std::size_t i = 1; i < snapshot.events.size(); ++i) {
    EXPECT_LE(snapshot.events[i - 1].mono_ns, snapshot.events[i].mono_ns);
  }
  EXPECT_GT(snapshot.last_event_ns, 0u);
}

TEST(FlightRecorderTest, LongLabelsAreTruncatedNotOverrun) {
  const std::string longlabel = "truncate_" + std::string(100, 'x');
  RecordFlightEvent(FlightEventKind::kGeneric, longlabel, 0, 0);
  const FlightThreadSnapshot snapshot = SnapshotWithLabel("truncate_");
  ASSERT_FALSE(snapshot.events.empty());
  const FlightEvent& event = snapshot.events.back();
  EXPECT_EQ(std::strlen(event.label), kFlightLabelCapacity - 1);
  EXPECT_EQ(std::string(event.label),
            longlabel.substr(0, kFlightLabelCapacity - 1));
}

TEST(FlightRecorderTest, ConcurrentWritersNeverCorruptSnapshots) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  const std::uint64_t before = FlightEventsRecorded();
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      const std::string label = "writer" + std::to_string(t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        RecordFlightEvent(FlightEventKind::kGeneric, label, i, 0);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(FlightEventsRecorded(), before + kThreads * kPerThread);

  // After quiesce every writer ring holds exactly the newest capacity
  // worth of its events, all internally consistent.
  int writer_rings = 0;
  for (const FlightThreadSnapshot& snapshot : SnapshotFlightRecorder()) {
    if (snapshot.events.empty()) continue;
    const std::string label(snapshot.events.back().label);
    if (label.rfind("writer", 0) != 0) continue;
    ++writer_rings;
    EXPECT_EQ(snapshot.recorded, kPerThread);
    EXPECT_EQ(snapshot.events.size(), kFlightRingCapacity);
    EXPECT_EQ(snapshot.dropped, kPerThread - kFlightRingCapacity);
    EXPECT_EQ(snapshot.events.back().a, kPerThread - 1);
    for (const FlightEvent& event : snapshot.events) {
      EXPECT_EQ(std::string(event.label), label);
    }
  }
  EXPECT_EQ(writer_rings, kThreads);
}

TEST(FlightRecorderTest, MacroIsDormantWhenDisabled) {
  SetEnabledForTesting(false);
  const std::uint64_t before = FlightEventsRecorded();
  CHOBS_FLIGHT_EVENT(kGeneric, "dormant", 1, 2);
  EXPECT_EQ(FlightEventsRecorded(), before);

  SetEnabledForTesting(true);
  CHOBS_FLIGHT_EVENT(kGeneric, "awake", 3, 4);
  SetEnabledForTesting(false);
#if CHAMELEON_OBS_ENABLED
  EXPECT_EQ(FlightEventsRecorded(), before + 1);
#else
  // Compiled out entirely: the macro is an empty statement either way.
  EXPECT_EQ(FlightEventsRecorded(), before);
#endif
}

TEST(FlightRecorderTest, DumpRecordIsWellFormed) {
  RecordFlightEvent(FlightEventKind::kSeed, "dump_seed", 2018, 0);
  MemorySink sink;
  EmitFlightRecorderDump(&sink, SIGSEGV);
  const std::vector<std::string> lines = sink.lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines.front();
  EXPECT_EQ(JsonlStringField(line, "type"), "flight_event_dump");
  EXPECT_EQ(JsonlNumberField(line, "signal"), SIGSEGV);
  EXPECT_GE(JsonlNumberField(line, "threads").value_or(0.0), 1.0);
  EXPECT_GE(JsonlNumberField(line, "events").value_or(0.0), 1.0);
  EXPECT_GE(JsonlNumberField(line, "recorded").value_or(0.0),
            JsonlNumberField(line, "events").value_or(0.0));
  EXPECT_NE(line.find("\"tail\":["), std::string::npos);
  EXPECT_NE(line.find("\"rings\":["), std::string::npos);
  EXPECT_NE(line.find("dump_seed"), std::string::npos);

  // A shutdown-path dump (no signal) omits the signal field.
  MemorySink clean;
  EmitFlightRecorderDump(&clean, -1);
  const std::vector<std::string> clean_lines = clean.lines();
  ASSERT_EQ(clean_lines.size(), 1u);
  EXPECT_FALSE(JsonlNumberField(clean_lines.front(), "signal").has_value());

  // Null sink: explicit no-op.
  EmitFlightRecorderDump(nullptr, SIGSEGV);
}

}  // namespace
}  // namespace chameleon::obs
