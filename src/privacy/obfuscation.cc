#include "chameleon/privacy/obfuscation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "chameleon/obs/obs.h"
#include "chameleon/util/parallel.h"
#include "chameleon/util/string_util.h"
#include "chameleon/util/timer.h"

namespace chameleon::privacy {
namespace {

/// Vertices per scheduling block in the posterior sweep. Per-block
/// partial S/T arrays cost O(max_degree) doubles each; 256 keeps the
/// block count (and so the partial-buffer memory) small while still
/// load-balancing hub-heavy blocks.
constexpr std::size_t kPosteriorBlock = 256;

/// Slack absorbing float noise in the entropy-vs-log2(k) comparison, so
/// an exactly-uniform posterior over k vertices counts as k-obfuscated.
constexpr double kEntropySlack = 1e-12;

std::size_t AdversaryValue(const graph::UncertainGraph& graph, NodeId v,
                           AdversaryModel model) {
  switch (model) {
    case AdversaryModel::kRoundedExpectedDegree:
      return static_cast<std::size_t>(
          std::llround(graph.expected_degree(v)));
    case AdversaryModel::kStructuralDegree:
      return graph.Neighbors(v).size();
  }
  return 0;
}

Status ValidateOptions(const ObfuscationOptions& options) {
  if (!(options.k > 1.0)) {
    return Status::InvalidArgument(
        StrFormat("k = %g must be greater than 1", options.k));
  }
  if (!(options.epsilon >= 0.0 && options.epsilon <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("epsilon = %g must be in [0, 1]", options.epsilon));
  }
  return Status::OK();
}

}  // namespace

std::string_view AdversaryModelName(AdversaryModel model) {
  switch (model) {
    case AdversaryModel::kRoundedExpectedDegree:
      return "expected_degree";
    case AdversaryModel::kStructuralDegree:
      return "structural_degree";
  }
  return "unknown";
}

Result<ObfuscationCertificate> VerifyObfuscation(
    const graph::UncertainGraph& graph, const ObfuscationOptions& options) {
  CHAMELEON_RETURN_IF_ERROR(ValidateOptions(options));
  const std::vector<DegreeDistribution> dists =
      BuildDegreeDistributions(graph, options.threads);
  return VerifyObfuscation(graph, dists, options);
}

Result<ObfuscationCertificate> VerifyObfuscation(
    const graph::UncertainGraph& graph,
    const std::vector<DegreeDistribution>& dists,
    const ObfuscationOptions& options) {
  CHAMELEON_RETURN_IF_ERROR(ValidateOptions(options));
  const std::size_t n = graph.num_nodes();
  if (dists.size() != n) {
    return Status::InvalidArgument(
        StrFormat("%zu degree distributions for %zu vertices", dists.size(),
                  static_cast<std::size_t>(n)));
  }
  if (n == 0) {
    return Status::InvalidArgument("cannot verify an empty graph");
  }

  CHOBS_SPAN(span, "privacy/obf_check");
  WallTimer timer;
  ObfuscationCertificate cert;
  cert.k = options.k;
  cert.epsilon = options.epsilon;
  cert.vertices = n;
  cert.adversary = options.adversary;
  cert.threads = EffectiveThreads(options.threads);

  // Adversary knowledge values and the ω range the posteriors span.
  std::vector<std::size_t> omegas(n);
  std::size_t max_value = 0;
  for (NodeId v = 0; v < n; ++v) {
    omegas[v] = AdversaryValue(graph, v, options.adversary);
    max_value = std::max({max_value, omegas[v], dists[v].num_edges()});
  }

  // One vertex-major sweep accumulates, for every degree value ω,
  //   S(ω) = Σ_u X_u(ω)   and   T(ω) = Σ_u X_u(ω)·log₂ X_u(ω);
  // the posterior entropy is then H(Y_ω) = log₂ S − T/S without ever
  // materializing a posterior. Per-block partials merged in block order
  // keep the sums worker-count independent.
  const std::size_t width = max_value + 1;
  const std::size_t blocks = NumBlocks(n, kPosteriorBlock);
  std::vector<std::vector<double>> partial_s(blocks);
  std::vector<std::vector<double>> partial_t(blocks);
  {
    CHOBS_SPAN(sweep_span, "posterior_sweep");
    ParallelForBlocks(
        n, kPosteriorBlock, options.threads,
        [&](std::size_t block, std::size_t begin, std::size_t end) {
          std::vector<double>& s = partial_s[block];
          std::vector<double>& t = partial_t[block];
          s.assign(width, 0.0);
          t.assign(width, 0.0);
          for (std::size_t u = begin; u < end; ++u) {
            const std::vector<double>& pmf = dists[u].pmf();
            for (std::size_t w = 0; w < pmf.size(); ++w) {
              const double x = pmf[w];
              if (x > 0.0) {
                s[w] += x;
                t[w] += x * std::log2(x);
              }
            }
          }
        });
    sweep_span.AddCount("vertices", n);
  }
  std::vector<double> sum(width, 0.0);
  std::vector<double> sum_xlogx(width, 0.0);
  for (std::size_t block = 0; block < blocks; ++block) {
    for (std::size_t w = 0; w < width; ++w) {
      sum[w] += partial_s[block][w];
      sum_xlogx[w] += partial_t[block][w];
    }
  }

  std::vector<double> entropy(width, 0.0);
  std::vector<bool> value_seen(width, false);
  for (std::size_t w = 0; w < width; ++w) {
    if (sum[w] > 0.0) {
      entropy[w] = std::max(0.0, std::log2(sum[w]) - sum_xlogx[w] / sum[w]);
    }
  }

  const double required_bits = std::log2(options.k);
  double entropy_sum = 0.0;
  double entropy_min = std::numeric_limits<double>::infinity();
  if (options.keep_per_vertex) cert.per_vertex.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t omega = omegas[v];
    const double h = entropy[omega];
    const bool obfuscated = h + kEntropySlack >= required_bits;
    if (!obfuscated) ++cert.not_obfuscated;
    entropy_sum += h;
    entropy_min = std::min(entropy_min, h);
    value_seen[omega] = true;
    if (options.keep_per_vertex) {
      cert.per_vertex.push_back(VertexObfuscation{
          .vertex = v,
          .omega = omega,
          .entropy_bits = h,
          .k_anonymity = std::exp2(h),
          .obfuscated = obfuscated,
      });
    }
  }
  for (std::size_t w = 0; w < width; ++w) {
    if (value_seen[w]) ++cert.distinct_omegas;
  }
  cert.epsilon_hat =
      static_cast<double>(cert.not_obfuscated) / static_cast<double>(n);
  cert.obfuscated = cert.epsilon_hat <= options.epsilon;
  cert.min_entropy_bits = entropy_min;
  cert.mean_entropy_bits = entropy_sum / static_cast<double>(n);
  cert.wall_ms = static_cast<double>(timer.ElapsedNanos()) * 1e-6;

  span.AddCount("vertices", n);
  span.AddCount("not_obfuscated", cert.not_obfuscated);
  CHOBS_COUNT("privacy/obf_check/checks", 1);
  CHOBS_COUNT("privacy/obf_check/vertices", n);
  CHOBS_COUNT("privacy/obf_check/not_obfuscated", cert.not_obfuscated);
  EmitPrivacyCheckRecord(cert);
  return cert;
}

void EmitPrivacyCheckRecord(const ObfuscationCertificate& certificate) {
  if (!obs::Enabled()) return;
  obs::RecordSink* sink = obs::GlobalSink();
  if (sink == nullptr) return;
  const std::string line = StrFormat(
      "{\"type\":\"privacy_check\",\"t_ms\":%llu,\"k\":%.10g,"
      "\"eps\":%.10g,\"eps_hat\":%.10g,\"obfuscated\":%s,"
      "\"vertices\":%llu,\"not_obfuscated\":%llu,"
      "\"min_entropy_bits\":%.10g,\"mean_entropy_bits\":%.10g,"
      "\"distinct_omegas\":%llu,\"adversary\":\"%s\",\"threads\":%d,"
      "\"wall_ms\":%.6g}",
      static_cast<unsigned long long>(WallUnixMillis()), certificate.k,
      certificate.epsilon, certificate.epsilon_hat,
      certificate.obfuscated ? "true" : "false",
      static_cast<unsigned long long>(certificate.vertices),
      static_cast<unsigned long long>(certificate.not_obfuscated),
      certificate.min_entropy_bits, certificate.mean_entropy_bits,
      static_cast<unsigned long long>(certificate.distinct_omegas),
      std::string(AdversaryModelName(certificate.adversary)).c_str(),
      certificate.threads, certificate.wall_ms);
  sink->Write(line);
}

}  // namespace chameleon::privacy
