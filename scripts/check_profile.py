#!/usr/bin/env python3
"""Validates a chameleon sampling-profiler capture.

Usage: check_profile.py <profile.folded> [metrics.jsonl]
           [--span=PREFIX] [--min-frac=F] [--min-samples=N]

Passes when the folded collapsed-stack file parses ("frame;frame;... N"
lines), holds at least --min-samples samples in total, and attributes at
least --min-frac of them to stacks rooted in the --span span path
(default: the "reliability" span must own > 50% of the CPU). When a
metrics JSONL is given, the "profile" record must exist, agree that
samples were captured, and carry a non-empty per-span breakdown.
Exits non-zero with a diagnostic otherwise.
"""
import json
import sys


def parse_folded(path):
    """Returns [(frames, count)] or raises ValueError with a location."""
    stacks = []
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            head, sep, count = line.rpartition(" ")
            if not sep or not count.isdigit() or not head:
                raise ValueError(f"{path}:{lineno}: not a folded line: {line!r}")
            stacks.append((head.split(";"), int(count)))
    return stacks


def check_record(path):
    """Returns an error string or None; prints the record summary."""
    profiles = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("type") == "profile":
                profiles.append(obj)
    if not profiles:
        return f"{path}: no profile record"
    for rec in profiles:
        if rec.get("samples", 0) <= 0:
            return f"{path}: profile record has no samples: {rec}"
        if not rec.get("spans"):
            return f"{path}: profile record has no span breakdown: {rec}"
    rec = profiles[-1]
    print(f"profile record OK: {rec['samples']} samples at {rec['hz']} Hz "
          f"over {rec['duration_ms']:.0f} ms, {len(rec['spans'])} span paths")
    return None


def main() -> int:
    span_prefix = "reliability"
    min_frac = 0.5
    min_samples = 20
    positional = []
    for arg in sys.argv[1:]:
        if arg.startswith("--span="):
            span_prefix = arg.split("=", 1)[1]
        elif arg.startswith("--min-frac="):
            min_frac = float(arg.split("=", 1)[1])
        elif arg.startswith("--min-samples="):
            min_samples = int(arg.split("=", 1)[1])
        else:
            positional.append(arg)
    if not positional:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        stacks = parse_folded(positional[0])
    except (OSError, ValueError) as err:
        print(err, file=sys.stderr)
        return 1
    if not stacks:
        print(f"{positional[0]}: empty folded profile", file=sys.stderr)
        return 1

    total = sum(count for _, count in stacks)
    in_span = sum(count for frames, count in stacks
                  if frames and frames[0] == span_prefix)
    if total < min_samples:
        print(f"{positional[0]}: only {total} samples (need {min_samples}); "
              f"run longer or raise --profile_hz", file=sys.stderr)
        return 1
    frac = in_span / total
    if frac < min_frac:
        roots = {}
        for frames, count in stacks:
            roots[frames[0]] = roots.get(frames[0], 0) + count
        top = sorted(roots.items(), key=lambda kv: -kv[1])[:5]
        print(f"{positional[0]}: span '{span_prefix}' owns {frac:.1%} of "
              f"{total} samples (need {min_frac:.0%}); top roots: {top}",
              file=sys.stderr)
        return 1
    print(f"folded profile OK: {len(stacks)} stacks, {total} samples, "
          f"{frac:.1%} under span '{span_prefix}'")

    if len(positional) > 1:
        err = check_record(positional[1])
        if err:
            print(err, file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
